//! Bulk little-endian ↔ `f64` conversion kernels.
//!
//! `enkf-pfs` stores every state region as packed little-endian `f64`
//! bytes; the read path of each analysis cycle converts whole member
//! vectors at once. On little-endian targets (every platform this repo
//! ships on) `f64::from_le_bytes` is a bit-level identity, so the whole
//! conversion collapses to one `memcpy`-class bulk copy — the compiler
//! vectorizes it with the widest available loads/stores. Big-endian
//! targets fall back to the per-element byte-swapping loop.
//!
//! Both directions are trivially bit-identical to the legacy
//! `chunks_exact(8)` / `extend_from_slice(&v.to_le_bytes())` loops they
//! replace (pinned by a proptest in `enkf-pfs`): the bytes moved are the
//! same bytes, only the move is bulk.

/// Decode packed little-endian `f64` bytes into `dst` (cleared first;
/// allocation-free once `dst` has steady-state capacity).
///
/// # Panics
/// When `src.len()` is not a multiple of 8.
pub fn le_bytes_to_f64_into(src: &[u8], dst: &mut Vec<f64>) {
    assert!(
        src.len().is_multiple_of(8),
        "le_bytes_to_f64_into: byte length {} not a multiple of 8",
        src.len()
    );
    let n = src.len() / 8;
    dst.clear();
    dst.reserve(n);
    #[cfg(target_endian = "little")]
    unsafe {
        // Identical bytes, bulk move: the Vec's buffer is f64-aligned and
        // holds exactly n decoded values afterwards.
        std::ptr::copy_nonoverlapping(src.as_ptr(), dst.as_mut_ptr() as *mut u8, src.len());
        dst.set_len(n);
    }
    #[cfg(not(target_endian = "little"))]
    dst.extend(
        src.chunks_exact(8)
            .map(|chunk| f64::from_le_bytes(chunk.try_into().expect("chunk is 8 bytes"))),
    );
}

/// Append the little-endian encoding of `values` to `out` (the encode
/// counterpart of [`le_bytes_to_f64_into`]; appends, does not clear, so
/// callers can emit headers first).
pub fn extend_f64_le(values: &[f64], out: &mut Vec<u8>) {
    #[cfg(target_endian = "little")]
    {
        // On LE targets the in-memory representation already is the wire
        // encoding; append it in one bulk copy.
        let bytes = unsafe {
            std::slice::from_raw_parts(values.as_ptr() as *const u8, std::mem::size_of_val(values))
        };
        out.extend_from_slice(bytes);
    }
    #[cfg(not(target_endian = "little"))]
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}
