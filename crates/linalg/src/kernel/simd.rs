//! ISA detection and the explicit-SIMD register-tiled microkernels.
//!
//! The default kernels are **bit-identical across every dispatch target**:
//! the AVX2 paths compute each output element with exactly the same IEEE
//! multiply-then-add sequence as the scalar fallback (vectorization is
//! across output *columns*, never across the contraction index, and no
//! fused multiply-add is issued), so a run on an AVX2 machine and a run on
//! a baseline x86-64 or non-x86 machine produce the same bytes. Runtime
//! dispatch therefore needs no feature gate for correctness; the `simd`
//! cargo feature (default on) only controls whether detection is compiled
//! in at all.
//!
//! The `fast-math` cargo feature additionally enables fused multiply-add
//! variants (single rounding per `a*b+c`, different — typically *more*
//! accurate — bits) that are pinned by their own conformance digests in
//! `tests/kernel_conformance.rs` rather than by equality with the scalar
//! path.

// Pointer + stride kernels necessarily carry many scalar parameters.
#![allow(clippy::too_many_arguments)]
use std::sync::OnceLock;

/// Instruction-set tier selected at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isa {
    /// Portable scalar kernels (auto-vectorized by the compiler for the
    /// build target's baseline, e.g. SSE2 on x86-64).
    Scalar,
    /// 4-lane `f64` AVX2 kernels, multiply-then-add only.
    Avx2,
    /// AVX2 plus FMA: the fused kernels become *available*; they are only
    /// dispatched when the `fast-math` feature is also enabled.
    Avx2Fma,
}

impl Isa {
    /// Human-readable tier name (for the roofline bench's provenance).
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2 => "avx2",
            Isa::Avx2Fma => "avx2+fma",
        }
    }
}

/// The ISA tier the kernel layer dispatches to, detected once per process.
pub fn active_isa() -> Isa {
    static ISA: OnceLock<Isa> = OnceLock::new();
    *ISA.get_or_init(detect)
}

#[cfg(all(target_arch = "x86_64", feature = "simd"))]
fn detect() -> Isa {
    if std::arch::is_x86_feature_detected!("avx2") {
        if std::arch::is_x86_feature_detected!("fma") {
            Isa::Avx2Fma
        } else {
            Isa::Avx2
        }
    } else {
        Isa::Scalar
    }
}

#[cfg(not(all(target_arch = "x86_64", feature = "simd")))]
fn detect() -> Isa {
    Isa::Scalar
}

/// True when the dispatched kernels fuse multiply-adds (and results may
/// therefore differ from the deterministic default). Requires both the
/// `fast-math` feature and FMA hardware.
pub fn fma_active() -> bool {
    cfg!(feature = "fast-math") && active_isa() == Isa::Avx2Fma
}

#[cfg(all(target_arch = "x86_64", feature = "simd"))]
pub use x86::*;

#[cfg(all(target_arch = "x86_64", feature = "simd"))]
mod x86 {
    use crate::kernel::gemm::{nn_tile_scalar, tn_tile_scalar};
    use crate::kernel::tiles::{MR, NR};
    use core::arch::x86_64::*;

    /// `acc <- acc + a*b` (two roundings) or `fma(a, b, acc)` (one), chosen
    /// at monomorphization time so each target-feature wrapper compiles the
    /// branch-free body it needs.
    #[inline(always)]
    unsafe fn mul_acc<const FMA: bool>(acc: __m256d, a: __m256d, b: __m256d) -> __m256d {
        if FMA {
            _mm256_fmadd_pd(a, b, acc)
        } else {
            _mm256_add_pd(acc, _mm256_mul_pd(a, b))
        }
    }

    /// AVX2 NN microkernel (multiply-then-add; bit-identical to scalar).
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available and that the pointers cover
    /// `m×k` (`a`, row stride `lda`), `k×n` (`b`, stride `ldb`) and `m×n`
    /// (`c`, stride `ldc`) with `c` disjoint from `a`/`b`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn nn_block_avx2(
        a: *const f64,
        lda: usize,
        b: *const f64,
        ldb: usize,
        c: *mut f64,
        ldc: usize,
        m: usize,
        n: usize,
        k: usize,
    ) {
        nn_block_v::<false>(a, lda, b, ldb, c, ldc, m, n, k)
    }

    /// FMA NN microkernel (`fast-math` dispatch only).
    ///
    /// # Safety
    /// As [`nn_block_avx2`], plus FMA availability.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn nn_block_fma(
        a: *const f64,
        lda: usize,
        b: *const f64,
        ldb: usize,
        c: *mut f64,
        ldc: usize,
        m: usize,
        n: usize,
        k: usize,
    ) {
        nn_block_v::<true>(a, lda, b, ldb, c, ldc, m, n, k)
    }

    /// Shared NN body: 4×8 register tiles (8 accumulator vectors), edges
    /// delegated to the scalar tile (same per-element order). The `av == 0`
    /// skip branch of the legacy kernel is preserved per `(row, l)` pair.
    #[inline(always)]
    unsafe fn nn_block_v<const FMA: bool>(
        a: *const f64,
        lda: usize,
        b: *const f64,
        ldb: usize,
        c: *mut f64,
        ldc: usize,
        m: usize,
        n: usize,
        k: usize,
    ) {
        let m_main = m - m % MR;
        let n_main = n - n % NR;
        let mut i = 0;
        while i < m_main {
            let mut j = 0;
            while j < n_main {
                let cij = c.add(i * ldc + j);
                let mut acc = [[_mm256_setzero_pd(); 2]; MR];
                for (r, row) in acc.iter_mut().enumerate() {
                    row[0] = _mm256_loadu_pd(cij.add(r * ldc));
                    row[1] = _mm256_loadu_pd(cij.add(r * ldc + 4));
                }
                for l in 0..k {
                    let bl = b.add(l * ldb + j);
                    let b0 = _mm256_loadu_pd(bl);
                    let b1 = _mm256_loadu_pd(bl.add(4));
                    for (r, row) in acc.iter_mut().enumerate() {
                        let av = *a.add((i + r) * lda + l);
                        if av == 0.0 {
                            continue;
                        }
                        let avv = _mm256_set1_pd(av);
                        row[0] = mul_acc::<FMA>(row[0], avv, b0);
                        row[1] = mul_acc::<FMA>(row[1], avv, b1);
                    }
                }
                for (r, row) in acc.iter().enumerate() {
                    _mm256_storeu_pd(cij.add(r * ldc), row[0]);
                    _mm256_storeu_pd(cij.add(r * ldc + 4), row[1]);
                }
                j += NR;
            }
            if j < n {
                nn_tile_scalar(a, lda, b, ldb, c, ldc, i, j, MR, n - j, k);
            }
            i += MR;
        }
        if i < m {
            nn_tile_scalar(a, lda, b, ldb, c, ldc, i, 0, m - i, n, k);
        }
    }

    /// AVX2 TN microkernel (`AᵀB`; multiply-then-add, bit-identical to
    /// scalar).
    ///
    /// # Safety
    /// AVX2 available; `a` covers `k×(lda≥m)` (its columns are the logical
    /// left rows), `b` covers `k×n` stride `ldb`, `c` covers `m×n` stride
    /// `ldc`, `c` disjoint from `a`/`b`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn tn_block_avx2(
        a: *const f64,
        lda: usize,
        b: *const f64,
        ldb: usize,
        c: *mut f64,
        ldc: usize,
        m: usize,
        n: usize,
        k: usize,
    ) {
        tn_block_v::<false>(a, lda, b, ldb, c, ldc, m, n, k)
    }

    /// FMA TN microkernel (`fast-math` dispatch only).
    ///
    /// # Safety
    /// As [`tn_block_avx2`], plus FMA availability.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn tn_block_fma(
        a: *const f64,
        lda: usize,
        b: *const f64,
        ldb: usize,
        c: *mut f64,
        ldc: usize,
        m: usize,
        n: usize,
        k: usize,
    ) {
        tn_block_v::<true>(a, lda, b, ldb, c, ldc, m, n, k)
    }

    /// Shared TN body: identical tiling to NN; the left value comes from
    /// `a[l*lda + i + r]` (contiguous across the 4 tile rows) and there is
    /// deliberately no zero-skip branch, matching the legacy kernel.
    #[inline(always)]
    unsafe fn tn_block_v<const FMA: bool>(
        a: *const f64,
        lda: usize,
        b: *const f64,
        ldb: usize,
        c: *mut f64,
        ldc: usize,
        m: usize,
        n: usize,
        k: usize,
    ) {
        let m_main = m - m % MR;
        let n_main = n - n % NR;
        let mut i = 0;
        while i < m_main {
            let mut j = 0;
            while j < n_main {
                let cij = c.add(i * ldc + j);
                let mut acc = [[_mm256_setzero_pd(); 2]; MR];
                for (r, row) in acc.iter_mut().enumerate() {
                    row[0] = _mm256_loadu_pd(cij.add(r * ldc));
                    row[1] = _mm256_loadu_pd(cij.add(r * ldc + 4));
                }
                for l in 0..k {
                    let al = a.add(l * lda + i);
                    let bl = b.add(l * ldb + j);
                    let b0 = _mm256_loadu_pd(bl);
                    let b1 = _mm256_loadu_pd(bl.add(4));
                    for (r, row) in acc.iter_mut().enumerate() {
                        let avv = _mm256_set1_pd(*al.add(r));
                        row[0] = mul_acc::<FMA>(row[0], avv, b0);
                        row[1] = mul_acc::<FMA>(row[1], avv, b1);
                    }
                }
                for (r, row) in acc.iter().enumerate() {
                    _mm256_storeu_pd(cij.add(r * ldc), row[0]);
                    _mm256_storeu_pd(cij.add(r * ldc + 4), row[1]);
                }
                j += NR;
            }
            if j < n {
                tn_tile_scalar(a, lda, b, ldb, c, ldc, i, j, MR, n - j, k);
            }
            i += MR;
        }
        if i < m {
            tn_tile_scalar(a, lda, b, ldb, c, ldc, i, 0, m - i, n, k);
        }
    }

    /// FMA NT microkernel (`ABᵀ`, `fast-math` dispatch only): each output
    /// element is a 4-accumulator vectorized dot product along `k` —
    /// reassociated relative to the deterministic chunked kernel, with a
    /// fixed lane/reduction order so results are still reproducible.
    ///
    /// # Safety
    /// AVX2+FMA available; `a` covers `m×k` stride `lda`, `b` covers `n×k`
    /// stride `ldb`, `c` covers `m×n` stride `ldc`, `c` disjoint.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn nt_block_fma(
        a: *const f64,
        lda: usize,
        b: *const f64,
        ldb: usize,
        c: *mut f64,
        ldc: usize,
        m: usize,
        n: usize,
        k: usize,
    ) {
        let k_main = k - k % 16;
        for i in 0..m {
            let ai = a.add(i * lda);
            for j in 0..n {
                let bj = b.add(j * ldb);
                let mut acc = [_mm256_setzero_pd(); 4];
                let mut l = 0;
                while l < k_main {
                    for (q, accq) in acc.iter_mut().enumerate() {
                        *accq = _mm256_fmadd_pd(
                            _mm256_loadu_pd(ai.add(l + 4 * q)),
                            _mm256_loadu_pd(bj.add(l + 4 * q)),
                            *accq,
                        );
                    }
                    l += 16;
                }
                let red =
                    _mm256_add_pd(_mm256_add_pd(acc[0], acc[1]), _mm256_add_pd(acc[2], acc[3]));
                let hi = _mm256_extractf128_pd(red, 1);
                let lo = _mm256_castpd256_pd128(red);
                let pair = _mm_add_pd(lo, hi);
                let mut sum = _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
                while l < k {
                    sum = (*ai.add(l)).mul_add(*bj.add(l), sum);
                    l += 1;
                }
                *c.add(i * ldc + j) += sum;
            }
        }
    }
}
