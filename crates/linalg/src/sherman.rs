//! Iterative Sherman-Morrison solver for the EnKF analysis system.
//!
//! The batched (covariance-form) analysis needs `Z = C⁻¹ B` with
//! `C = R + V Vᵀ`, where `R = diag(r)` is the diagonal data-error
//! covariance and `V ∈ R^{m×N}` holds the scaled observed anomalies. The
//! modified-Cholesky core factors `C` explicitly; this module implements
//! the inversion-free alternative of Nino-Ruiz, Sandu & Anderson
//! (arXiv 1302.3876): treat `V Vᵀ` as a sum of `N` rank-1 updates of `R`
//! and fold each one into the solution with the Sherman-Morrison formula,
//! never materializing `C` or any factor of it.
//!
//! Per update `k` the scheme maintains `U = C_k⁻¹ V` and `Z = C_k⁻¹ B`
//! for the partially-updated `C_k = R + Σ_{i<k} v_i v_iᵀ`:
//!
//! ```text
//! U ← R⁻¹ V,  Z ← R⁻¹ B
//! for k in 0..N:
//!     γ  = 1 / (1 + v_kᵀ u_k)
//!     u_j ← u_j − γ (v_kᵀ u_j) u_k    for j > k
//!     z_j ← z_j − γ (v_kᵀ z_j) u_k    for every right-hand side j
//! ```
//!
//! Cost is `O(m N (N + n_rhs))` flops and `O(m N)` workspace — linear in
//! the observation count `m`, which is what makes it attractive for the
//! batched executor where `m` is the full network, not a localization box.

use crate::matrix::Matrix;
use crate::{LinalgError, Result};

/// Reusable workspace for the iterative Sherman-Morrison solve. Holds the
/// `m × N` update buffer `U` so repeated solves (one per cycle per rank)
/// allocate nothing after the first.
#[derive(Debug, Clone)]
pub struct ShermanMorrisonWorkspace {
    u: Matrix,
}

impl Default for ShermanMorrisonWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl ShermanMorrisonWorkspace {
    /// An empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        ShermanMorrisonWorkspace {
            u: Matrix::zeros(0, 0),
        }
    }

    /// Solve `(diag(r) + V Vᵀ) Z = B` in place: on entry `z` holds the
    /// right-hand sides `B` (`m × n_rhs`), on exit the solution `Z`.
    ///
    /// `r` must be strictly positive (a diagonal SPD `R`); `V` is `m × N`.
    /// Fails with [`LinalgError::NotPositiveDefinite`] if a rank-1 update
    /// loses positivity (impossible in exact arithmetic for valid inputs,
    /// so it signals a malformed `r`).
    pub fn solve_in_place(&mut self, r: &[f64], v: &Matrix, z: &mut Matrix) -> Result<()> {
        let m = v.nrows();
        let n = v.ncols();
        if r.len() != m {
            return Err(LinalgError::DimMismatch {
                op: "sherman-morrison solve (diag vs V)",
                lhs: (r.len(), 1),
                rhs: (m, n),
            });
        }
        if z.nrows() != m {
            return Err(LinalgError::DimMismatch {
                op: "sherman-morrison solve (V vs B)",
                lhs: (m, n),
                rhs: (z.nrows(), z.ncols()),
            });
        }
        for (i, &ri) in r.iter().enumerate() {
            // Negated comparison so NaN variances are rejected too.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(ri > 0.0) {
                return Err(LinalgError::NotPositiveDefinite(i));
            }
        }

        // U ← R⁻¹ V, Z ← R⁻¹ B.
        self.u.resize(m, n);
        for i in 0..m {
            let inv = 1.0 / r[i];
            let (vr, ur) = (v.row(i), self.u.row_mut(i));
            for k in 0..n {
                ur[k] = vr[k] * inv;
            }
            for val in z.row_mut(i) {
                *val *= inv;
            }
        }

        let nrhs = z.ncols();
        for k in 0..n {
            // γ = 1 / (1 + v_kᵀ u_k); u_k is column k of the current U.
            let mut den = 1.0;
            for i in 0..m {
                den += v[(i, k)] * self.u[(i, k)];
            }
            // Negated comparison so a NaN denominator is rejected too.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(den > 0.0) {
                return Err(LinalgError::NotPositiveDefinite(k));
            }
            let gamma = 1.0 / den;

            // Remaining update columns: u_j ← u_j − γ (v_kᵀ u_j) u_k.
            for j in k + 1..n {
                let mut dot = 0.0;
                for i in 0..m {
                    dot += v[(i, k)] * self.u[(i, j)];
                }
                let scale = gamma * dot;
                for i in 0..m {
                    let uk = self.u[(i, k)];
                    self.u[(i, j)] -= scale * uk;
                }
            }
            // Right-hand sides: z_j ← z_j − γ (v_kᵀ z_j) u_k.
            for j in 0..nrhs {
                let mut dot = 0.0;
                for i in 0..m {
                    dot += v[(i, k)] * z[(i, j)];
                }
                let scale = gamma * dot;
                for i in 0..m {
                    let uk = self.u[(i, k)];
                    z[(i, j)] -= scale * uk;
                }
            }
        }
        Ok(())
    }

    /// Allocating convenience form of
    /// [`ShermanMorrisonWorkspace::solve_in_place`]: returns
    /// `Z = (diag(r) + V Vᵀ)⁻¹ B`.
    pub fn solve(&mut self, r: &[f64], v: &Matrix, b: &Matrix) -> Result<Matrix> {
        let mut z = b.clone();
        self.solve_in_place(r, v, &mut z)?;
        Ok(z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::GaussianSampler;
    use crate::Cholesky;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_system(m: usize, n: usize, nrhs: usize, seed: u64) -> (Vec<f64>, Matrix, Matrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        let r: Vec<f64> = (0..m).map(|_| 0.2 + gs.sample(&mut rng).abs()).collect();
        let v = Matrix::from_fn(m, n, |_, _| gs.sample(&mut rng));
        let b = Matrix::from_fn(m, nrhs, |_, _| gs.sample(&mut rng));
        (r, v, b)
    }

    fn dense_c(r: &[f64], v: &Matrix) -> Matrix {
        let mut c = v.matmul_tr(v).unwrap();
        for (i, &ri) in r.iter().enumerate() {
            c[(i, i)] += ri;
        }
        c
    }

    #[test]
    fn matches_cholesky_solve() {
        for (m, n, nrhs, seed) in [(7, 4, 3, 1u64), (12, 5, 12, 2), (5, 9, 1, 3), (1, 1, 1, 4)] {
            let (r, v, b) = random_system(m, n, nrhs, seed);
            let mut ws = ShermanMorrisonWorkspace::new();
            let z = ws.solve(&r, &v, &b).unwrap();
            let oracle = Cholesky::factor(&dense_c(&r, &v))
                .unwrap()
                .solve(&b)
                .unwrap();
            assert!(
                z.approx_eq(&oracle, 1e-9),
                "m={m} n={n} nrhs={nrhs}: SM and Cholesky disagree"
            );
        }
    }

    #[test]
    fn residual_is_small() {
        let (r, v, b) = random_system(10, 6, 4, 7);
        let mut ws = ShermanMorrisonWorkspace::new();
        let z = ws.solve(&r, &v, &b).unwrap();
        let back = dense_c(&r, &v).matmul(&z).unwrap();
        assert!(back.approx_eq(&b, 1e-9), "C·Z must reproduce B");
    }

    #[test]
    fn workspace_reuse_across_shapes_is_clean() {
        let mut ws = ShermanMorrisonWorkspace::new();
        for (m, n, nrhs, seed) in [(9, 3, 2, 11u64), (4, 7, 5, 12), (9, 3, 2, 11)] {
            let (r, v, b) = random_system(m, n, nrhs, seed);
            let z = ws.solve(&r, &v, &b).unwrap();
            let oracle = Cholesky::factor(&dense_c(&r, &v))
                .unwrap()
                .solve(&b)
                .unwrap();
            assert!(
                z.approx_eq(&oracle, 1e-9),
                "reuse with seed {seed} diverged"
            );
        }
    }

    #[test]
    fn zero_rank_update_is_diagonal_solve() {
        let r = vec![2.0, 4.0];
        let v = Matrix::zeros(2, 0);
        let b = Matrix::from_vec(2, 1, vec![6.0, 6.0]).unwrap();
        let mut ws = ShermanMorrisonWorkspace::new();
        let z = ws.solve(&r, &v, &b).unwrap();
        assert_eq!(z.as_slice(), &[3.0, 1.5]);
    }

    #[test]
    fn shape_and_positivity_errors_are_typed() {
        let mut ws = ShermanMorrisonWorkspace::new();
        let v = Matrix::zeros(3, 2);
        let mut b = Matrix::zeros(3, 1);
        assert!(matches!(
            ws.solve_in_place(&[1.0; 2], &v, &mut b),
            Err(LinalgError::DimMismatch { .. })
        ));
        let mut short = Matrix::zeros(2, 1);
        assert!(matches!(
            ws.solve_in_place(&[1.0; 3], &v, &mut short),
            Err(LinalgError::DimMismatch { .. })
        ));
        assert!(matches!(
            ws.solve_in_place(&[1.0, -1.0, 1.0], &v, &mut b),
            Err(LinalgError::NotPositiveDefinite(1))
        ));
    }
}
