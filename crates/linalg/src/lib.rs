//! Dense linear algebra kernels for the S-EnKF reproduction.
//!
//! The paper's local analysis (Eq. 6) needs a small set of dense operations:
//! matrix products, symmetric positive-definite factorizations (Cholesky and
//! LDLᵀ), triangular solves, and the *modified Cholesky* estimator of the
//! inverse background-error covariance matrix used by P-EnKF
//! (Nino-Ruiz, Sandu & Deng, SISC 2018). Operational implementations call
//! LAPACK/CuBLAS; this crate implements the same kernels from scratch so the
//! whole stack is self-contained Rust.
//!
// Triangular factorizations and banded scans read most naturally with
// explicit indices; iterator rewrites obscure the math.
#![allow(clippy::needless_range_loop)]

//! Matrices are dense, row-major `f64`. All products bottom out in the
//! [`kernel`] layer: a cache-oblivious divide-and-conquer GEMM over
//! register-tiled SIMD microkernels, bit-identical to the original blocked
//! loops under default features (see `kernel` for the determinism contract).

pub mod chol;
pub mod eigen;
pub mod kernel;
pub mod lstsq;
pub mod matrix;
pub mod modchol;
pub mod qr;
pub mod rng;
pub mod sherman;

pub use chol::{CholWorkspace, Cholesky, Ldlt};
pub use eigen::{EigenWorkspace, SymEigen};
pub use lstsq::ridge_least_squares;
pub use matrix::Matrix;
pub use modchol::{modified_cholesky_inverse, ModifiedCholesky};
pub use qr::{qr_least_squares, Qr};
pub use rng::GaussianSampler;
pub use sherman::ShermanMorrisonWorkspace;

/// Errors produced by factorizations and shape-checked operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible: `(found_rows, found_cols)` vs expectation.
    DimMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left/first operand.
        lhs: (usize, usize),
        /// Shape of the right/second operand.
        rhs: (usize, usize),
    },
    /// The matrix was expected to be symmetric positive definite but a
    /// non-positive pivot was found at the given index.
    NotPositiveDefinite(usize),
    /// The matrix must be square for this operation.
    NotSquare {
        /// Shape that was found.
        shape: (usize, usize),
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::DimMismatch { op, lhs, rhs } => {
                write!(f, "{op}: dimension mismatch {lhs:?} vs {rhs:?}")
            }
            LinalgError::NotPositiveDefinite(i) => {
                write!(f, "matrix is not positive definite (pivot {i})")
            }
            LinalgError::NotSquare { shape } => write!(f, "matrix is not square: {shape:?}"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience alias for fallible linalg operations.
pub type Result<T> = std::result::Result<T, LinalgError>;
