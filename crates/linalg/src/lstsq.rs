//! Small ridge-regularized least-squares solves.
//!
//! The modified-Cholesky estimator regresses each model component's ensemble
//! anomalies on the anomalies of its localization predecessors. Those
//! regressions have tall-thin design matrices (N samples × a handful of
//! predictors), and because the ensemble covariance is rank-deficient
//! (`N ≪ n`) a small ridge term keeps the normal equations well posed —
//! exactly the regularization used by Nino-Ruiz et al.

use crate::{Cholesky, LinalgError, Matrix, Result};

/// Solve `min_β ‖X β − y‖² + λ‖β‖²` via the normal equations
/// `(Xᵀ X + λ I) β = Xᵀ y`.
///
/// `x` is `samples × predictors`, `y` has `samples` entries, and `lambda`
/// must be non-negative (zero is accepted when `XᵀX` is well conditioned).
pub fn ridge_least_squares(x: &Matrix, y: &[f64], lambda: f64) -> Result<Vec<f64>> {
    if y.len() != x.nrows() {
        return Err(LinalgError::DimMismatch {
            op: "ridge_least_squares",
            lhs: x.shape(),
            rhs: (y.len(), 1),
        });
    }
    let p = x.ncols();
    if p == 0 {
        return Ok(Vec::new());
    }
    let mut gram = x.tr_matmul(x)?;
    for i in 0..p {
        gram[(i, i)] += lambda;
    }
    gram.symmetrize();
    // Xᵀ y.
    let mut rhs = vec![0.0; p];
    for (row, &yi) in (0..x.nrows()).map(|i| x.row(i)).zip(y) {
        for (r, &xij) in rhs.iter_mut().zip(row) {
            *r += xij * yi;
        }
    }
    let ch = Cholesky::factor(&gram)?;
    ch.solve_vec(&rhs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fit_recovers_coefficients() {
        // y = 2 x1 - 3 x2 with independent columns and no noise.
        let x = Matrix::from_vec(4, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 2.0, -1.0]).unwrap();
        let y: Vec<f64> = (0..4).map(|i| 2.0 * x[(i, 0)] - 3.0 * x[(i, 1)]).collect();
        let beta = ridge_least_squares(&x, &y, 0.0).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-10);
        assert!((beta[1] + 3.0).abs() < 1e-10);
    }

    #[test]
    fn ridge_shrinks_toward_zero() {
        let x = Matrix::from_vec(3, 1, vec![1.0, 1.0, 1.0]).unwrap();
        let y = vec![1.0, 1.0, 1.0];
        let free = ridge_least_squares(&x, &y, 0.0).unwrap()[0];
        let shrunk = ridge_least_squares(&x, &y, 10.0).unwrap()[0];
        assert!((free - 1.0).abs() < 1e-12);
        assert!(shrunk < free && shrunk > 0.0);
    }

    #[test]
    fn rank_deficient_needs_ridge() {
        // Two identical columns: XᵀX singular, lambda rescues it.
        let x = Matrix::from_vec(3, 2, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0]).unwrap();
        let y = vec![2.0, 4.0, 6.0];
        assert!(ridge_least_squares(&x, &y, 0.0).is_err());
        let beta = ridge_least_squares(&x, &y, 1e-6).unwrap();
        // Symmetric problem splits the coefficient evenly.
        assert!((beta[0] - beta[1]).abs() < 1e-6);
        assert!((beta[0] + beta[1] - 2.0).abs() < 1e-4);
    }

    #[test]
    fn empty_predictor_set() {
        let x = Matrix::zeros(3, 0);
        let beta = ridge_least_squares(&x, &[1.0, 2.0, 3.0], 0.1).unwrap();
        assert!(beta.is_empty());
    }

    #[test]
    fn mismatched_sample_count_errors() {
        let x = Matrix::zeros(3, 2);
        assert!(ridge_least_squares(&x, &[1.0], 0.1).is_err());
    }
}
