//! Weighted max-min fair allocation of a divisible resource.
//!
//! The classic water-filling construction: every claimant is entitled to a
//! share of the capacity proportional to its weight; a claimant that wants
//! *less* than its entitlement is fully satisfied and its surplus is
//! redistributed over the rest, again by weight, until no claimant's
//! entitlement exceeds its demand. The result is the unique allocation
//! that is Pareto-efficient, demand-capped, and gives every claimant at
//! least `min(demand, weighted equal share)` — the *min-share floor* the
//! scheduler's SLA admission reasons against and the property suite pins.
//!
//! Everything here is straight-line `f64` arithmetic over slices in index
//! order: allocations are bit-identical across reruns, which is half of
//! the scheduler's determinism story (the other half is the seeded,
//! ordered decision log).

/// One claimant of the resource.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Demand {
    /// Fair-share weight (> 0).
    pub weight: f64,
    /// The most of the resource the claimant can use (≥ 0).
    pub demand: f64,
}

/// Weighted max-min fair allocation of `capacity` over `demands`.
///
/// Returns one allocation per claimant, in input order, with
/// `alloc[i] ≤ demands[i].demand`, `Σ alloc ≤ capacity`, and
/// `alloc[i] ≥ min(demand_i, capacity · w_i / Σw)` — the min-share floor.
pub fn weighted_max_min(capacity: f64, demands: &[Demand]) -> Vec<f64> {
    assert!(capacity >= 0.0, "capacity must be non-negative");
    for d in demands {
        assert!(
            d.weight > 0.0 && d.weight.is_finite(),
            "weights must be positive and finite"
        );
        assert!(
            d.demand >= 0.0 && d.demand.is_finite(),
            "demands must be non-negative and finite"
        );
    }
    let mut alloc = vec![0.0f64; demands.len()];
    let mut satisfied = vec![false; demands.len()];
    let mut remaining = capacity;
    loop {
        let active_weight: f64 = demands
            .iter()
            .zip(&satisfied)
            .filter(|(_, s)| !**s)
            .map(|(d, _)| d.weight)
            .sum();
        if active_weight <= 0.0 || remaining <= 0.0 {
            break;
        }
        // Entitlement round: claimants whose demand fits inside their
        // proportional share of what remains are satisfied exactly and
        // removed; their unused entitlement stays in `remaining` for the
        // next round.
        let mut any_capped = false;
        for (i, d) in demands.iter().enumerate() {
            if satisfied[i] {
                continue;
            }
            let entitlement = remaining * d.weight / active_weight;
            if d.demand <= entitlement {
                alloc[i] = d.demand;
                satisfied[i] = true;
                any_capped = true;
            }
        }
        if any_capped {
            remaining = capacity
                - alloc
                    .iter()
                    .zip(&satisfied)
                    .filter(|(_, s)| **s)
                    .map(|(a, _)| *a)
                    .sum::<f64>();
            continue;
        }
        // No claimant is demand-capped: split what remains by weight.
        for (i, d) in demands.iter().enumerate() {
            if !satisfied[i] {
                alloc[i] = remaining * d.weight / active_weight;
                satisfied[i] = true;
            }
        }
        break;
    }
    alloc
}

/// The weighted min-share floor of claimant `i`: what weighted max-min
/// guarantees it regardless of the others' demands,
/// `min(demand_i, capacity · w_i / Σw)`.
pub fn min_share_floor(capacity: f64, demands: &[Demand], i: usize) -> f64 {
    let total: f64 = demands.iter().map(|d| d.weight).sum();
    (capacity * demands[i].weight / total).min(demands[i].demand)
}

/// Integer fair share of `capacity` indivisible units (compute ranks):
/// weighted max-min on the continuous relaxation, floored, with leftover
/// units granted by largest fractional remainder (ties broken by lower
/// index — deterministic).
pub fn rank_shares(capacity: usize, demands: &[Demand]) -> Vec<usize> {
    let real = weighted_max_min(capacity as f64, demands);
    let mut grant: Vec<usize> = real.iter().map(|a| a.floor() as usize).collect();
    let mut leftover = capacity.saturating_sub(grant.iter().sum::<usize>());
    // Largest-remainder rounding, capped by integer demand.
    let mut order: Vec<usize> = (0..demands.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = real[a] - real[a].floor();
        let fb = real[b] - real[b].floor();
        fb.partial_cmp(&fa).unwrap().then(a.cmp(&b))
    });
    for i in order {
        if leftover == 0 {
            break;
        }
        let cap = demands[i].demand.floor() as usize;
        if grant[i] < cap {
            grant[i] += 1;
            leftover -= 1;
        }
    }
    grant
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(weight: f64, demand: f64) -> Demand {
        Demand { weight, demand }
    }

    #[test]
    fn equal_weights_split_evenly() {
        let a = weighted_max_min(1.0, &[d(1.0, 1.0), d(1.0, 1.0)]);
        assert_eq!(a, vec![0.5, 0.5]);
    }

    #[test]
    fn weights_bias_the_split() {
        let a = weighted_max_min(1.0, &[d(3.0, 1.0), d(1.0, 1.0)]);
        assert!((a[0] - 0.75).abs() < 1e-12);
        assert!((a[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn surplus_redistributes_to_the_hungry() {
        // Claimant 0 wants only 0.1 of its 0.5 entitlement; the surplus
        // goes to claimant 1, capped at nothing.
        let a = weighted_max_min(1.0, &[d(1.0, 0.1), d(1.0, 1.0)]);
        assert!((a[0] - 0.1).abs() < 1e-12);
        assert!((a[1] - 0.9).abs() < 1e-12);
    }

    #[test]
    fn floors_hold_under_cascaded_redistribution() {
        let demands = [d(1.0, 0.05), d(2.0, 0.2), d(1.0, 1.0), d(4.0, 1.0)];
        let a = weighted_max_min(1.0, &demands);
        let total: f64 = a.iter().sum();
        assert!(total <= 1.0 + 1e-12);
        for i in 0..demands.len() {
            assert!(
                a[i] + 1e-12 >= min_share_floor(1.0, &demands, i),
                "claimant {i} got {} < floor {}",
                a[i],
                min_share_floor(1.0, &demands, i)
            );
            assert!(a[i] <= demands[i].demand + 1e-12);
        }
    }

    #[test]
    fn zero_capacity_allocates_nothing() {
        let a = weighted_max_min(0.0, &[d(1.0, 1.0)]);
        assert_eq!(a, vec![0.0]);
    }

    #[test]
    fn rank_shares_conserve_and_cap() {
        let demands = [d(1.0, 512.0), d(1.0, 512.0), d(2.0, 100.0)];
        let g = rank_shares(512, &demands);
        assert!(g.iter().sum::<usize>() <= 512);
        assert!(g[2] <= 100);
        // The heavy tenant is demand-capped at 100; the rest split evenly.
        assert_eq!(g[2], 100);
        assert_eq!(g[0], g[1]);
    }

    #[test]
    fn allocations_are_bit_identical_across_reruns() {
        let demands = [d(1.3, 0.7), d(2.7, 0.9), d(0.5, 0.2)];
        let a = weighted_max_min(1.0, &demands);
        let b = weighted_max_min(1.0, &demands);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
