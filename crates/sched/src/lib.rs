//! Assimilation-as-a-service: a multi-tenant campaign scheduler.
//!
//! The paper's co-design story is about sharing one real machine — its
//! parallel file system and interconnect — across competing work. This
//! crate adds the service layer that makes the reproduction multi-tenant:
//! many campaigns from many tenants are admitted onto one simulated
//! cluster, with
//!
//! * a **job queue with admission control** ([`Scheduler::submit`]):
//!   per-tenant quotas (queue depth → backpressure, concurrent-job caps)
//!   and rate limits (minimum submit gap), every rejection typed
//!   ([`SubmitError`]);
//! * **weighted max-min fair-share** of the two contended resources
//!   ([`fair`]): OST bandwidth (continuous shares, rebalanced at cycle
//!   boundaries) and compute ranks (integer grants). Shares are threaded
//!   through the substrate — a campaign granted 25% of the machine is
//!   re-modeled against `PfsParams::with_bandwidth_share(0.25)` /
//!   `NetParams::with_bandwidth_share(0.25)`, so contention reshapes the
//!   DES (overlap, queueing) instead of scaling a number after the fact;
//! * a **capacity-planning front end** ([`DesPlanner`]): the discrete-event
//!   model (`enkf_parallel::model_campaign`) doubles as an SLA oracle.
//!   A job whose deadline cannot be met even alone on the machine is
//!   rejected at submit; a job whose admission would push any running
//!   campaign's guaranteed-floor prediction past its deadline waits in the
//!   queue;
//! * **deterministic, seeded decisions**: every admit/queue/reject/dispatch
//!   is appended to a decision log whose FNV-64 digest is bit-identical
//!   across reruns of the same seed — the property the conformance and
//!   property suites pin.
//!
//! Two drivers share the scheduler core:
//!
//! * [`simulate`] — the multi-campaign DES: virtual arrivals, virtual
//!   cycle boundaries, completions priced by the single-cycle model at the
//!   current share. Used by the capacity planner itself and by the
//!   `scheduler_fairness` bench.
//! * [`run_real`] — dispatch to the real (threaded) executors: admitted
//!   jobs run concurrently in deterministic waves under the cluster's rank
//!   budget, each campaign on its own stores with its trace tagged
//!   `(tenant, job)`. Isolation is an invariant, not an aspiration: a
//!   campaign scheduled next to strangers produces bit-identical stats,
//!   ensembles and trace digests to the same campaign run alone
//!   (`tests/scheduler_conformance.rs`).

pub mod des;
pub mod fair;
pub mod job;
pub mod real;
pub mod scheduler;
pub mod tenant;

pub use des::{simulate, JobRecord, MixOutcome, ShareCheck};
pub use fair::{min_share_floor, rank_shares, weighted_max_min, Demand};
pub use job::{DesPlanner, JobId, JobModel, JobSpec, NoPlanner, Planner, StepCost};
pub use real::{run_real, RealDispatch, RealOutcome, RealResult};
pub use scheduler::{ClusterCapacity, JobState, SchedConfig, Scheduler, SharePolicy, SubmitError};
pub use tenant::{Quota, TenantId, TenantSpec};
