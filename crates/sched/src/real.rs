//! The real dispatcher: admitted campaigns run on the threaded executors,
//! concurrently, in deterministic waves under the cluster's rank budget.
//!
//! The same [`Scheduler`] that drives the DES makes every decision here,
//! so the decision log of a real run is comparable (and, for the same
//! inputs, identical) to a simulated one. Execution is wave-based: the
//! dispatcher admits jobs until the rank budget or a quota stops it, runs
//! that wave to completion on scoped threads, retires it, and admits the
//! next — the join barrier is what keeps the decision sequence
//! independent of OS thread timing.
//!
//! Isolation is structural: each campaign gets its own `FileStore` and
//! `CheckpointStore`, the executors are deterministic, and trace digests
//! ignore durations and tenant tags. A campaign that shares its wave with
//! strangers is therefore bit-identical — stats, cycle digests, final
//! ensemble, trace digest — to the same campaign run alone, which
//! `tests/scheduler_conformance.rs` pins as the isolation invariant.
//! Campaign backoff clocks are virtual ([`BackoffClock::Virtual`]) so a
//! tenant's fault-recovery stalls never block the wave on wall sleeps.

use enkf_ckpt::CheckpointStore;
use enkf_parallel::{run_campaign_ctx, BackoffClock, CampaignCtx, CampaignError, CampaignReport};
use enkf_pfs::FileStore;
use std::collections::BTreeMap;

use crate::job::{JobId, JobSpec, NoPlanner};
use crate::scheduler::{SchedConfig, Scheduler, SubmitError};
use crate::tenant::{TenantId, TenantSpec};

/// One campaign handed to the real dispatcher: who owns it, what to run,
/// and the (per-campaign, isolated) stores to run it against.
pub struct RealDispatch<'a> {
    /// Owning tenant.
    pub tenant: TenantId,
    /// The job.
    pub spec: JobSpec,
    /// The campaign's working store.
    pub work: &'a FileStore,
    /// The campaign's checkpoint store.
    pub ckpt: &'a CheckpointStore,
}

/// One campaign's real execution result.
#[derive(Debug)]
pub struct RealResult {
    /// The job.
    pub id: JobId,
    /// Which dispatch wave ran it (0-based).
    pub wave: usize,
    /// The campaign report, or how it failed.
    pub report: Result<CampaignReport, CampaignError>,
}

/// What a real dispatch run produced.
#[derive(Debug)]
pub struct RealOutcome {
    /// Per-campaign results, in dispatch order.
    pub results: Vec<RealResult>,
    /// Submits the scheduler refused: `(tenant, why)` in input order.
    pub rejected: Vec<(TenantId, SubmitError)>,
    /// Jobs admitted to the queue but never dispatchable (e.g. a
    /// `max_running` quota of zero).
    pub unscheduled: Vec<JobId>,
    /// The decision log.
    pub decisions: Vec<String>,
    /// FNV-64 of the decision log.
    pub decisions_digest: u64,
}

/// Run `jobs` from `tenants` on the real executors under `cfg`'s rank
/// budget and policy. Submission order is the input order (all at wave 0);
/// wave boundaries are the virtual timestamps in the decision log.
pub fn run_real(
    cfg: &SchedConfig,
    tenants: &[TenantSpec],
    jobs: Vec<RealDispatch<'_>>,
) -> RealOutcome {
    let mut sched = Scheduler::new(*cfg, NoPlanner);
    for t in tenants {
        sched.add_tenant(*t);
    }
    let mut pending: BTreeMap<JobId, RealDispatch<'_>> = BTreeMap::new();
    let mut rejected = Vec::new();
    for d in jobs {
        match sched.submit(0.0, d.tenant, d.spec.clone()) {
            Ok(id) => {
                pending.insert(id, d);
            }
            Err(e) => rejected.push((d.tenant, e)),
        }
    }

    let mut results: Vec<RealResult> = Vec::new();
    let mut wave = 0usize;
    while !sched.queued().is_empty() {
        let dispatched = sched.try_dispatch(wave as f64);
        if dispatched.is_empty() {
            break;
        }
        // Run the whole wave to completion on scoped threads; joining in
        // dispatch order keeps the result sequence deterministic.
        let wave_jobs: Vec<(JobId, &RealDispatch<'_>)> = dispatched
            .iter()
            .map(|id| (*id, pending.get(id).expect("dispatched job was submitted")))
            .collect();
        let reports: Vec<Result<CampaignReport, CampaignError>> = std::thread::scope(|s| {
            let handles: Vec<_> = wave_jobs
                .iter()
                .map(|(id, d)| {
                    let ctx = CampaignCtx {
                        tenant: Some((id.tenant.0, id.seq)),
                        backoff: BackoffClock::Virtual,
                        ckpt_mode: d.spec.ckpt_mode,
                        health: None,
                    };
                    s.spawn(move || {
                        run_campaign_ctx(
                            d.work,
                            d.ckpt,
                            &d.spec.exec,
                            &d.spec.campaign,
                            &d.spec.fault,
                            &ctx,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("campaign thread panicked"))
                .collect()
        });
        drop(wave_jobs);
        let end = (wave + 1) as f64;
        for (id, report) in dispatched.into_iter().zip(reports) {
            sched.finish_job(id, end);
            pending.remove(&id);
            results.push(RealResult { id, wave, report });
        }
        wave += 1;
    }

    RealOutcome {
        results,
        rejected,
        unscheduled: sched.queued().to_vec(),
        decisions: sched.decisions().to_vec(),
        decisions_digest: sched.decisions_digest(),
    }
}
