//! Job specifications and the DES-backed capacity planner.

use enkf_fault::FaultConfig;
use enkf_parallel::{
    model_campaign, CampaignConfig, CampaignExecutor, CampaignModelPlan, CkptMode, ModelConfig,
    ModelVariant,
};
use std::collections::BTreeMap;

use crate::tenant::TenantId;

/// A job's identity: the owning tenant plus a per-tenant sequence number
/// assigned at submit. Renders as `tenant.seq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId {
    /// Owning tenant.
    pub tenant: TenantId,
    /// Submission sequence number within the tenant, from 0.
    pub seq: u32,
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.tenant, self.seq)
    }
}

/// The DES model of a job, used by the capacity planner to price its
/// cycles under any bandwidth share.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobModel {
    /// Workload geometry and full-machine substrate parameters.
    pub cfg: ModelConfig,
    /// Which modeled executor the campaign drives.
    pub variant: ModelVariant,
    /// Whether the supervisor checkpoints after every cycle.
    pub checkpoint: bool,
}

/// What one campaign asks of the service.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The real executor the campaign drives when dispatched.
    pub exec: CampaignExecutor,
    /// The campaign itself (mesh, cycles, seed, restart policy, …).
    pub campaign: CampaignConfig,
    /// Fault plan the campaign runs under.
    pub fault: FaultConfig,
    /// How the dispatched campaign commits checkpoints: synchronous (on
    /// the critical path) or pipelined behind the next cycle. One field
    /// drives both worlds — the real dispatcher passes it to
    /// `run_campaign_ctx` and the DES planner prices the matching
    /// schedule, so admission reasoning and execution can't disagree.
    pub ckpt_mode: CkptMode,
    /// DES model for capacity planning; `None` opts out of SLA admission
    /// (the job is best-effort and only rank/quota-gated).
    pub model: Option<JobModel>,
    /// Service-level agreement: the most virtual seconds the campaign may
    /// take from dispatch to completion. Requires `model`.
    pub sla: Option<f64>,
    /// Fraction of the aggregate OST bandwidth this job can usefully
    /// drive, in `(0, 1]` — its fair-share demand cap.
    pub bw_demand: f64,
}

impl JobSpec {
    /// A best-effort job (no SLA, full bandwidth demand) for `exec`.
    pub fn best_effort(exec: CampaignExecutor, campaign: CampaignConfig) -> Self {
        JobSpec {
            exec,
            campaign,
            fault: FaultConfig::none(),
            ckpt_mode: CkptMode::default(),
            model: None,
            sla: None,
            bw_demand: 1.0,
        }
    }

    /// Switch the campaign (and its DES pricing) to pipelined checkpoint
    /// commits.
    pub fn pipelined(mut self) -> Self {
        self.ckpt_mode = CkptMode::Pipelined;
        self
    }

    /// Compute ranks the job's executor occupies while running.
    pub fn ranks(&self) -> usize {
        self.exec.num_ranks()
    }

    /// The modeled variant matching a real executor (every executor now
    /// has a DES model, so SLA-gated admission covers the whole matrix).
    pub fn variant_of(exec: &CampaignExecutor) -> Option<ModelVariant> {
        match *exec {
            CampaignExecutor::LEnkf { nsdx, nsdy } => Some(ModelVariant::LEnkf { nsdx, nsdy }),
            CampaignExecutor::PEnkf { nsdx, nsdy } => Some(ModelVariant::PEnkf { nsdx, nsdy }),
            CampaignExecutor::SEnkf(p) => Some(ModelVariant::SEnkf(p)),
            // The kernel choice changes flops, not operation structure, so
            // one DES model (keyed by shard count alone) prices both.
            CampaignExecutor::DEnkf { shards, .. } => Some(ModelVariant::DEnkf { shards }),
        }
    }
}

/// What one scheduling step of a job costs in virtual seconds at a given
/// bandwidth share.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepCost {
    /// One assimilation cycle, including its checkpoint commit.
    pub cycle: f64,
    /// The initial (cycle-0 recovery line) checkpoint paid at dispatch.
    pub init: f64,
}

/// Prices a job's scheduling steps under a bandwidth share. The DES
/// planner is the real implementation; tests may stub it.
pub trait Planner {
    /// Virtual cost of one cycle (and the dispatch-time initialization)
    /// of `spec` when granted `share` of the machine's bandwidth.
    fn step(&mut self, id: JobId, spec: &JobSpec, share: f64) -> StepCost;
}

/// The capacity planner: prices `(job, share)` by running the job's
/// single-cycle discrete-event model against the share-scaled substrate
/// ([`ModelConfig::with_bandwidth_share`]) and caching the result. Shares
/// recur (they are ratios of a small weight set), so a campaign's whole
/// lifetime usually costs a handful of DES runs.
#[derive(Debug, Default)]
pub struct DesPlanner {
    cache: BTreeMap<(JobId, u64), StepCost>,
}

impl DesPlanner {
    /// An empty planner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Price a one-shot spec without an id (solo predictions).
    pub fn price(spec: &JobSpec, share: f64) -> StepCost {
        let model = spec
            .model
            .expect("capacity planning requires a JobSpec with a model");
        let shared = model.cfg.with_bandwidth_share(share);
        let run = |cycles: usize| {
            let plan = CampaignModelPlan {
                cycles,
                checkpoint: model.checkpoint,
                pipelined: spec.ckpt_mode == CkptMode::Pipelined,
                restart: spec.campaign.restart,
            };
            let (out, _trace) =
                model_campaign(&shared, &model.variant, &plan, &FaultConfig::none())
                    .expect("campaign model failed");
            out.makespan
        };
        // The steady-state step is the 2-cycle/1-cycle makespan difference
        // — exact for both commit modes: synchronous campaigns add
        // `cycle + ckpt` per extra cycle, pipelined ones add
        // `cycle + dilation + tail` (the drained final write merely shifts
        // from cycle K−1 to cycle K). `init` is whatever the first cycle
        // costs beyond that, so `init + K·cycle` reproduces the K-cycle
        // model makespan exactly.
        let t1 = run(1);
        let cycle = run(2) - t1;
        StepCost {
            cycle,
            init: t1 - cycle,
        }
    }
}

impl Planner for DesPlanner {
    fn step(&mut self, id: JobId, spec: &JobSpec, share: f64) -> StepCost {
        *self
            .cache
            .entry((id, share.to_bits()))
            .or_insert_with(|| DesPlanner::price(spec, share))
    }
}

/// A planner that prices every step at zero — for best-effort scheduling
/// paths (the real dispatcher) where no SLA reasoning happens.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoPlanner;

impl Planner for NoPlanner {
    fn step(&mut self, _id: JobId, _spec: &JobSpec, _share: f64) -> StepCost {
        StepCost {
            cycle: 0.0,
            init: 0.0,
        }
    }
}
