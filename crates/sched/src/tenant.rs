//! Tenants: identity, fair-share weight, and admission quotas.

/// A tenant of the assimilation service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Per-tenant admission limits. Exceeding them is *backpressure*: the
/// submit call fails with a typed error and the caller retries later —
/// the queue never grows without bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quota {
    /// Campaigns this tenant may have running concurrently.
    pub max_running: usize,
    /// Campaigns this tenant may have waiting in the queue; a submit that
    /// would exceed it is rejected ([`SubmitError::Backpressure`]).
    ///
    /// [`SubmitError::Backpressure`]: crate::SubmitError::Backpressure
    pub max_queued: usize,
    /// Minimum seconds between two accepted submits (token-bucket rate
    /// limit with one token); `0.0` disables it.
    pub min_submit_gap: f64,
}

impl Default for Quota {
    fn default() -> Self {
        Quota {
            max_running: 4,
            max_queued: 16,
            min_submit_gap: 0.0,
        }
    }
}

/// A registered tenant: identity, weight, quota.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantSpec {
    /// The tenant.
    pub id: TenantId,
    /// Fair-share weight (> 0): bandwidth and rank allocations are
    /// proportional to it under contention.
    pub weight: f64,
    /// Admission limits.
    pub quota: Quota,
}

impl TenantSpec {
    /// A tenant with the default quota.
    pub fn new(id: u32, weight: f64) -> Self {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "tenant weight must be positive and finite, got {weight}"
        );
        TenantSpec {
            id: TenantId(id),
            weight,
            quota: Quota::default(),
        }
    }

    /// Replace the quota.
    pub fn with_quota(mut self, quota: Quota) -> Self {
        self.quota = quota;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let t = TenantSpec::new(3, 2.5).with_quota(Quota {
            max_running: 1,
            max_queued: 2,
            min_submit_gap: 0.5,
        });
        assert_eq!(t.id, TenantId(3));
        assert_eq!(t.weight, 2.5);
        assert_eq!(t.quota.max_running, 1);
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn zero_weight_rejected() {
        TenantSpec::new(0, 0.0);
    }
}
