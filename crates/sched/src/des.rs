//! The multi-campaign discrete-event simulation: many tenants' campaigns
//! arriving, queueing, and sharing the modeled machine in virtual time.
//!
//! The event loop owns virtual time; the [`Scheduler`] owns every
//! decision. Cycle durations come from the capacity planner — each
//! running campaign's next cycle is priced by the single-cycle DES at the
//! bandwidth share it holds *when the cycle starts*, and that duration is
//! then fixed (a mid-cycle rebalance affects only subsequent cycles, the
//! same cycle-boundary granularity at which the scheduler rebalances).
//!
//! Event ordering is total and deterministic: at any instant, cycle
//! completions fire first (in `JobId` order), then arrivals (in input
//! order), then one rebalance, then dispatch. Two runs with the same
//! seed, tenants and arrival list produce bit-identical outcomes —
//! including the decision-log digest the conformance suite pins.

use std::collections::BTreeMap;

use crate::job::{JobId, JobSpec, Planner};
pub use crate::scheduler::ShareCheck;
use crate::scheduler::{SchedConfig, Scheduler, SubmitError};
use crate::tenant::{TenantId, TenantSpec};

/// One completed campaign's scheduling history.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// The job.
    pub id: JobId,
    /// Submit time.
    pub submit: f64,
    /// Dispatch time.
    pub dispatch: f64,
    /// Completion time.
    pub completion: f64,
    /// Dispatch-to-completion virtual seconds.
    pub service: f64,
    /// The planner's solo (whole-machine) completion prediction, if the
    /// job carried a model — what SLA gating and the fairness bench
    /// compare `service` against.
    pub solo_prediction: Option<f64>,
    /// Assimilation cycles run.
    pub cycles: usize,
    /// Ranks occupied while running.
    pub ranks: usize,
    /// The bandwidth share under which each cycle ran.
    pub shares_seen: Vec<f64>,
}

/// The outcome of simulating one tenant mix.
#[derive(Debug, Clone, PartialEq)]
pub struct MixOutcome {
    /// Completed campaigns, in completion order.
    pub records: Vec<JobRecord>,
    /// Refused submits: `(time, tenant, why)`.
    pub rejected: Vec<(f64, TenantId, SubmitError)>,
    /// The full decision log.
    pub decisions: Vec<String>,
    /// FNV-64 of the decision log — the determinism witness.
    pub decisions_digest: u64,
    /// Share snapshots from every rebalance, for the fairness properties.
    pub share_checks: Vec<ShareCheck>,
    /// Virtual time of the last event.
    pub makespan: f64,
}

/// A cycle in flight: when it ends and what it costs.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    end: f64,
    dur: f64,
}

/// Simulate `arrivals` (a `(time, tenant, spec)` list) from `tenants`
/// onto the machine in `cfg`, pricing cycles with `planner`. Arrivals
/// are processed in time order (ties by list position).
pub fn simulate<P: Planner>(
    cfg: &SchedConfig,
    tenants: &[TenantSpec],
    arrivals: &[(f64, TenantId, JobSpec)],
    planner: P,
) -> MixOutcome {
    let mut sched = Scheduler::new(*cfg, planner);
    for t in tenants {
        sched.add_tenant(*t);
    }
    let mut order: Vec<usize> = (0..arrivals.len()).collect();
    order.sort_by(|&a, &b| {
        arrivals[a]
            .0
            .partial_cmp(&arrivals[b].0)
            .expect("arrival times must not be NaN")
            .then(a.cmp(&b))
    });

    let mut inflight: BTreeMap<JobId, InFlight> = BTreeMap::new();
    let mut records: Vec<JobRecord> = Vec::new();
    let mut rejected: Vec<(f64, TenantId, SubmitError)> = Vec::new();
    let mut next_arrival = 0usize;
    let mut makespan = 0.0f64;

    loop {
        let arrival_t = order.get(next_arrival).map(|&i| arrivals[i].0);
        let cycle_t = inflight
            .values()
            .map(|f| f.end)
            .fold(f64::INFINITY, f64::min);
        let now = match arrival_t {
            Some(a) => a.min(cycle_t),
            None if inflight.is_empty() => break,
            None => cycle_t,
        };
        makespan = makespan.max(now);

        // 1. Cycle completions at `now`, in JobId order (BTreeMap gives it).
        let done: Vec<JobId> = inflight
            .iter()
            .filter(|(_, f)| f.end <= now)
            .map(|(id, _)| *id)
            .collect();
        let mut continuing: Vec<JobId> = Vec::new();
        for id in done {
            let fl = inflight.remove(&id).expect("in-flight cycle exists");
            sched.finish_cycle(id, fl.dur);
            let st = sched.job(id).expect("job state exists");
            if st.cycles_left == 0 {
                let rec = JobRecord {
                    id,
                    submit: st.submit,
                    dispatch: st.dispatch.expect("completed job was dispatched"),
                    completion: now,
                    service: now - st.dispatch.expect("completed job was dispatched"),
                    solo_prediction: st.solo_prediction,
                    cycles: st.spec.campaign.cycles,
                    ranks: st.spec.ranks(),
                    shares_seen: st.shares_seen.clone(),
                };
                records.push(rec);
                sched.finish_job(id, now);
            } else {
                continuing.push(id);
            }
        }

        // 2. Arrivals at `now`, in input order.
        while next_arrival < order.len() && arrivals[order[next_arrival]].0 <= now {
            let (t, tenant, spec) = &arrivals[order[next_arrival]];
            if let Err(e) = sched.submit(*t, *tenant, spec.clone()) {
                rejected.push((*t, *tenant, e));
            }
            next_arrival += 1;
        }

        // 3. Cycle-boundary rebalance, then price the next cycle of every
        // continuing job at its fresh share.
        sched.rebalance(now);
        for id in continuing {
            let step = sched.price_step(id);
            inflight.insert(
                id,
                InFlight {
                    end: now + step.cycle,
                    dur: step.cycle,
                },
            );
        }

        // 4. Dispatch whatever now fits; a new job's first step pays the
        // dispatch-time initialization on top of its first cycle.
        for id in sched.try_dispatch(now) {
            let step = sched.price_step(id);
            let dur = step.init + step.cycle;
            inflight.insert(
                id,
                InFlight {
                    end: now + dur,
                    dur,
                },
            );
        }
    }

    MixOutcome {
        decisions_digest: sched.decisions_digest(),
        records,
        rejected,
        decisions: sched.decisions().to_vec(),
        share_checks: sched.share_checks().to_vec(),
        makespan,
    }
}
