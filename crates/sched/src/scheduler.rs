//! The scheduler core: admission queue, quotas, fair shares, dispatch.
//!
//! One `Scheduler` instance is driven either in virtual time (the
//! multi-campaign DES, [`crate::simulate`]) or in wall time (the real
//! dispatcher, [`crate::run_real`]). All scheduling state — queued and
//! running jobs, per-tenant accounting, the decision log — lives here, so
//! both drivers take identical admission and fairness decisions.
//!
//! Admission control at submit:
//!
//! * unknown tenants and jobs larger than the whole machine are rejected
//!   outright;
//! * per-tenant rate limits (minimum submit gap) and queue-depth quotas
//!   produce typed backpressure — the caller is told to retry, the queue
//!   never grows without bound;
//! * a job with an SLA is priced *solo* by the capacity planner; a
//!   deadline unattainable even alone on the machine is rejected at
//!   submit ([`SubmitError::SlaUnattainable`]) rather than discovered
//!   after hours of queueing.
//!
//! Dispatch (fair-share policy):
//!
//! * compute ranks are granted per tenant by integer weighted max-min
//!   over current demand; a tenant at its grant waits even if the machine
//!   has free ranks another tenant is entitled to;
//! * OST/interconnect bandwidth shares are continuous weighted max-min
//!   over running jobs (a tenant's weight splits evenly over its running
//!   jobs), rebalanced at every membership change and cycle boundary;
//! * before an admission, every running job's remaining work — and the
//!   candidate's whole campaign — is re-priced at its post-admission
//!   *guaranteed floor* share. If anyone's deadline would break, the
//!   candidate stays queued. Floors are what make the guarantee sound:
//!   actual max-min shares never drop below them, and cycle cost is
//!   monotone in the share.
//!
//! Every decision appends one line to the log; [`Scheduler::decisions_digest`]
//! is the FNV-64 of the whole log and must be bit-identical across reruns
//! of the same seed.

use enkf_ckpt::fnv64;
use enkf_health::HealthSnapshot;
use enkf_net::NetParams;
use enkf_pfs::PfsParams;
use std::collections::BTreeMap;

use crate::fair::{min_share_floor, rank_shares, weighted_max_min, Demand};
use crate::job::{JobId, JobSpec, Planner, StepCost};
use crate::tenant::{TenantId, TenantSpec};

/// What the whole simulated machine offers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterCapacity {
    /// Total compute ranks.
    pub ranks: usize,
    /// The full-machine parallel file system.
    pub pfs: PfsParams,
    /// The full-machine interconnect.
    pub net: NetParams,
}

impl ClusterCapacity {
    /// A Tianhe-2-like machine with `ranks` processors.
    pub fn tianhe2_like(ranks: usize) -> Self {
        ClusterCapacity {
            ranks,
            pfs: PfsParams::tianhe2_like(),
            net: NetParams::tianhe2_like(),
        }
    }
}

/// How running campaigns split the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharePolicy {
    /// Weighted max-min fair share with SLA-guarding admission — the
    /// scheduler this crate is about.
    FairShare,
    /// The naive baseline: every running job gets `1/k`, admission is
    /// first-fit on ranks, no SLA gating. Benched as "fair-share off".
    EqualSplit,
}

/// Scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedConfig {
    /// The machine.
    pub capacity: ClusterCapacity,
    /// The sharing policy.
    pub policy: SharePolicy,
    /// Seed for decision tie-breaking; reruns with the same seed produce
    /// bit-identical decision logs.
    pub seed: u64,
}

/// Why a submit was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// The tenant was never registered.
    UnknownTenant(TenantId),
    /// The job wants more ranks than the machine has.
    TooLarge {
        /// Ranks requested.
        ranks: usize,
        /// Ranks the machine has.
        capacity: usize,
    },
    /// The tenant's queue quota is full — backpressure, retry later.
    Backpressure {
        /// Jobs the tenant has queued.
        queued: usize,
        /// The tenant's queue quota.
        max_queued: usize,
    },
    /// The tenant submitted again within its minimum gap.
    RateLimited {
        /// Seconds until the next submit would be accepted.
        retry_after: f64,
    },
    /// The capacity planner predicts the SLA cannot be met even with the
    /// whole machine.
    SlaUnattainable {
        /// Predicted solo completion, virtual seconds.
        predicted: f64,
        /// The requested deadline.
        sla: f64,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::UnknownTenant(t) => write!(f, "unknown tenant {t}"),
            SubmitError::TooLarge { ranks, capacity } => {
                write!(f, "job wants {ranks} ranks, machine has {capacity}")
            }
            SubmitError::Backpressure { queued, max_queued } => {
                write!(f, "queue quota full ({queued}/{max_queued})")
            }
            SubmitError::RateLimited { retry_after } => {
                write!(f, "rate limited, retry in {retry_after:.3}s")
            }
            SubmitError::SlaUnattainable { predicted, sla } => {
                write!(
                    f,
                    "SLA unattainable: solo prediction {predicted:.3}s > {sla:.3}s"
                )
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// One job's scheduling lifecycle.
#[derive(Debug)]
pub struct JobState {
    /// The specification.
    pub spec: JobSpec,
    /// Submit time.
    pub submit: f64,
    /// Dispatch time, once running.
    pub dispatch: Option<f64>,
    /// Cycles still to run.
    pub cycles_left: usize,
    /// Current bandwidth share, set at dispatch and every rebalance.
    pub share: f64,
    /// Virtual service seconds consumed so far (cycles completed).
    pub service_used: f64,
    /// Every share the job ran a cycle under (audit trail).
    pub shares_seen: Vec<f64>,
    /// The planner's solo completion prediction, if the job has a model.
    pub solo_prediction: Option<f64>,
}

/// A share-snapshot taken at a rebalance, for the fairness property suite:
/// all entries are running jobs with their weight, demand and granted
/// share of unit capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct ShareCheck {
    /// Virtual time of the rebalance.
    pub time: f64,
    /// `(job, weight, demand, share)` per running job.
    pub entries: Vec<(JobId, f64, f64, f64)>,
}

/// The multi-tenant scheduler. See the module docs for the protocol.
#[derive(Debug)]
pub struct Scheduler<P: Planner> {
    cfg: SchedConfig,
    planner: P,
    tenants: BTreeMap<TenantId, TenantSpec>,
    jobs: BTreeMap<JobId, JobState>,
    queue: Vec<JobId>,
    running: Vec<JobId>,
    next_seq: BTreeMap<TenantId, u32>,
    last_submit: BTreeMap<TenantId, f64>,
    decisions: Vec<String>,
    share_checks: Vec<ShareCheck>,
    /// Fraction of PFS bandwidth still in rotation, per the latest
    /// [`HealthSnapshot`] applied — 1.0 on a healthy machine. Scales the
    /// bandwidth pool every rebalance splits and the floors SLA admission
    /// prices against.
    health_factor: f64,
}

impl<P: Planner> Scheduler<P> {
    /// A scheduler over `cfg` pricing steps with `planner`.
    pub fn new(cfg: SchedConfig, planner: P) -> Self {
        Scheduler {
            cfg,
            planner,
            tenants: BTreeMap::new(),
            jobs: BTreeMap::new(),
            queue: Vec::new(),
            running: Vec::new(),
            next_seq: BTreeMap::new(),
            last_submit: BTreeMap::new(),
            decisions: Vec::new(),
            share_checks: Vec::new(),
            health_factor: 1.0,
        }
    }

    /// Register a tenant before it submits.
    pub fn add_tenant(&mut self, spec: TenantSpec) {
        self.tenants.insert(spec.id, spec);
    }

    /// The configuration.
    pub fn config(&self) -> &SchedConfig {
        &self.cfg
    }

    /// A job's state (submitted jobs only).
    pub fn job(&self, id: JobId) -> Option<&JobState> {
        self.jobs.get(&id)
    }

    /// Queued job ids in submit order.
    pub fn queued(&self) -> &[JobId] {
        &self.queue
    }

    /// Running job ids in dispatch order.
    pub fn running(&self) -> &[JobId] {
        &self.running
    }

    /// The decision log so far.
    pub fn decisions(&self) -> &[String] {
        &self.decisions
    }

    /// FNV-64 digest of the decision log — bit-identical across reruns of
    /// the same seed and inputs.
    pub fn decisions_digest(&self) -> u64 {
        fnv64(self.decisions.join("\n").as_bytes())
    }

    /// Share snapshots taken at every rebalance (fairness audit trail).
    pub fn share_checks(&self) -> &[ShareCheck] {
        &self.share_checks
    }

    /// The bandwidth fraction the machine currently delivers (1.0 healthy).
    pub fn health_factor(&self) -> f64 {
        self.health_factor
    }

    /// Consume a campaign [`HealthSnapshot`] at a cycle boundary: shrink
    /// the bandwidth pool to the snapshot's
    /// [`capacity_factor`](HealthSnapshot::capacity_factor) (blacklisted
    /// OSTs are out of rotation until reintegrated) and rebalance every
    /// running job against the degraded machine. SLA admission floors are
    /// priced against the same shrunken pool, so deadline guarantees stay
    /// honest while capacity is down. Logged and deterministic: the same
    /// snapshot stream reproduces the same decision digest.
    pub fn apply_health(&mut self, now: f64, snap: &HealthSnapshot) {
        let factor = snap.capacity_factor();
        if (factor - self.health_factor).abs() > f64::EPSILON {
            self.log(
                now,
                format!(
                    "health cycle={} blacklisted={:?} suspected-ranks={:?} factor={factor:.9e}",
                    snap.cycle, snap.blacklisted_osts, snap.suspected_ranks
                ),
            );
        }
        self.health_factor = factor;
        self.rebalance(now);
    }

    fn log(&mut self, now: f64, line: String) {
        self.decisions.push(format!("t={now:.9e} {line}"));
    }

    /// Submit a job. On success the job is queued (dispatch is a separate
    /// step) and its id returned; on failure the typed refusal tells the
    /// tenant whether to retry (backpressure, rate limit) or give up.
    pub fn submit(
        &mut self,
        now: f64,
        tenant: TenantId,
        spec: JobSpec,
    ) -> Result<JobId, SubmitError> {
        let Some(tspec) = self.tenants.get(&tenant).copied() else {
            return Err(SubmitError::UnknownTenant(tenant));
        };
        let ranks = spec.ranks();
        if ranks > self.cfg.capacity.ranks {
            self.log(
                now,
                format!("reject tenant={tenant} too-large ranks={ranks}"),
            );
            return Err(SubmitError::TooLarge {
                ranks,
                capacity: self.cfg.capacity.ranks,
            });
        }
        if tspec.quota.min_submit_gap > 0.0 {
            if let Some(&last) = self.last_submit.get(&tenant) {
                let gap = now - last;
                if gap < tspec.quota.min_submit_gap {
                    self.log(now, format!("reject tenant={tenant} rate-limited"));
                    return Err(SubmitError::RateLimited {
                        retry_after: tspec.quota.min_submit_gap - gap,
                    });
                }
            }
        }
        let queued = self.queue.iter().filter(|id| id.tenant == tenant).count();
        if queued >= tspec.quota.max_queued {
            self.log(now, format!("reject tenant={tenant} backpressure"));
            return Err(SubmitError::Backpressure {
                queued,
                max_queued: tspec.quota.max_queued,
            });
        }
        // SLA feasibility: price the job alone on the machine. A deadline
        // that fails even solo can never be met and is refused now.
        let solo_prediction = if spec.model.is_some() {
            let seq = *self.next_seq.get(&tenant).unwrap_or(&0);
            let id = JobId { tenant, seq };
            let solo_share = spec
                .bw_demand
                .min(self.health_factor)
                .max(f64::MIN_POSITIVE);
            let step = self.planner.step(id, &spec, solo_share);
            Some(step.init + spec.campaign.cycles as f64 * step.cycle)
        } else {
            None
        };
        if let (Some(sla), Some(predicted)) = (spec.sla, solo_prediction) {
            if predicted > sla {
                self.log(now, format!("reject tenant={tenant} sla-unattainable"));
                return Err(SubmitError::SlaUnattainable { predicted, sla });
            }
        }
        let seq = self.next_seq.entry(tenant).or_insert(0);
        let id = JobId { tenant, seq: *seq };
        *seq += 1;
        self.last_submit.insert(tenant, now);
        let cycles = spec.campaign.cycles;
        self.jobs.insert(
            id,
            JobState {
                spec,
                submit: now,
                dispatch: None,
                cycles_left: cycles,
                share: 0.0,
                service_used: 0.0,
                shares_seen: Vec::new(),
                solo_prediction,
            },
        );
        self.queue.push(id);
        self.log(now, format!("queue job={id} ranks={ranks} cycles={cycles}"));
        Ok(id)
    }

    /// Bandwidth demands of `ids` in order: per-job weight is the tenant
    /// weight split evenly over that tenant's entries, demand is the
    /// job's `bw_demand`.
    fn bw_demands(&self, ids: &[JobId]) -> Vec<Demand> {
        let mut per_tenant: BTreeMap<TenantId, usize> = BTreeMap::new();
        for id in ids {
            *per_tenant.entry(id.tenant).or_insert(0) += 1;
        }
        ids.iter()
            .map(|id| {
                let w = self.tenants[&id.tenant].weight / per_tenant[&id.tenant] as f64;
                Demand {
                    weight: w,
                    demand: self.jobs[id].spec.bw_demand,
                }
            })
            .collect()
    }

    /// Current bandwidth share of each member of `ids` under the policy.
    fn shares_of(&self, ids: &[JobId]) -> Vec<f64> {
        if ids.is_empty() {
            return Vec::new();
        }
        match self.cfg.policy {
            SharePolicy::FairShare => weighted_max_min(self.health_factor, &self.bw_demands(ids)),
            SharePolicy::EqualSplit => {
                let even = self.health_factor / ids.len() as f64;
                ids.iter()
                    .map(|id| even.min(self.jobs[id].spec.bw_demand))
                    .collect()
            }
        }
    }

    /// Recompute every running job's share (membership changed or a cycle
    /// boundary passed) and snapshot the result for the fairness audit.
    pub fn rebalance(&mut self, now: f64) {
        let running = self.running.clone();
        let shares = self.shares_of(&running);
        let demands = self.bw_demands(&running);
        let mut entries = Vec::with_capacity(running.len());
        for ((id, share), demand) in running.iter().zip(&shares).zip(&demands) {
            self.jobs.get_mut(id).expect("running job exists").share = *share;
            entries.push((*id, demand.weight, demand.demand, *share));
        }
        self.share_checks.push(ShareCheck { time: now, entries });
    }

    /// Integer rank grant per tenant under weighted max-min, demand being
    /// each tenant's total appetite (running + queued ranks).
    fn tenant_rank_grants(&self) -> BTreeMap<TenantId, usize> {
        let tenants: Vec<TenantId> = self.tenants.keys().copied().collect();
        let demands: Vec<Demand> = tenants
            .iter()
            .map(|t| {
                let appetite: usize = self
                    .running
                    .iter()
                    .chain(self.queue.iter())
                    .filter(|id| id.tenant == *t)
                    .map(|id| self.jobs[id].spec.ranks())
                    .sum();
                Demand {
                    weight: self.tenants[t].weight,
                    demand: appetite as f64,
                }
            })
            .collect();
        let grants = rank_shares(self.cfg.capacity.ranks, &demands);
        tenants.into_iter().zip(grants).collect()
    }

    fn ranks_in_use(&self) -> usize {
        self.running
            .iter()
            .map(|id| self.jobs[id].spec.ranks())
            .sum()
    }

    fn tenant_ranks_running(&self, t: TenantId) -> usize {
        self.running
            .iter()
            .filter(|id| id.tenant == t)
            .map(|id| self.jobs[id].spec.ranks())
            .sum()
    }

    /// Would admitting `candidate` break anyone's deadline? Every member
    /// of the hypothetical running set is re-priced at its guaranteed
    /// floor share; admission requires all deadlines still hold.
    fn sla_admits(&mut self, candidate: JobId) -> bool {
        let mut hypothetical = self.running.clone();
        hypothetical.push(candidate);
        let demands = self.bw_demands(&hypothetical);
        for (i, id) in hypothetical.iter().enumerate() {
            let (sla, has_model) = {
                let st = &self.jobs[id];
                (st.spec.sla, st.spec.model.is_some())
            };
            let (Some(sla), true) = (sla, has_model) else {
                continue;
            };
            let floor = min_share_floor(self.health_factor, &demands, i).max(f64::MIN_POSITIVE);
            let spec = self.jobs[id].spec.clone();
            let step = self.planner.step(*id, &spec, floor);
            let st = &self.jobs[id];
            let init = if st.dispatch.is_none() {
                step.init
            } else {
                0.0
            };
            let predicted_remaining = init + st.cycles_left as f64 * step.cycle;
            if st.service_used + predicted_remaining > sla * (1.0 + 1e-9) {
                return false;
            }
        }
        true
    }

    /// Dispatch every queued job that fits, in fairness order. Returns the
    /// newly dispatched ids (in dispatch order); shares of all running
    /// jobs are rebalanced after each admission.
    pub fn try_dispatch(&mut self, now: f64) -> Vec<JobId> {
        let mut dispatched = Vec::new();
        loop {
            // Deterministic fairness order: tenants hungriest relative to
            // their weight first; seeded FNV tie-break, then submit order.
            let grants = self.tenant_rank_grants();
            let mut candidates: Vec<JobId> = self.queue.clone();
            let seed = self.cfg.seed;
            candidates.sort_by(|a, b| {
                let load = |id: &JobId| {
                    self.tenant_ranks_running(id.tenant) as f64 / self.tenants[&id.tenant].weight
                };
                let tie = |id: &JobId| fnv64(format!("{seed}|{}|{}", id.tenant, id.seq).as_bytes());
                load(a)
                    .partial_cmp(&load(b))
                    .unwrap()
                    .then_with(|| tie(a).cmp(&tie(b)))
                    .then_with(|| a.cmp(b))
            });
            let free = self.cfg.capacity.ranks - self.ranks_in_use();
            let mut admitted = None;
            for id in candidates {
                let st = &self.jobs[&id];
                let ranks = st.spec.ranks();
                let tenant = id.tenant;
                let quota = self.tenants[&tenant].quota;
                let tenant_running = self.running.iter().filter(|r| r.tenant == tenant).count();
                if tenant_running >= quota.max_running || ranks > free {
                    continue;
                }
                // Within a tenant, dispatch strictly in submit order.
                if self
                    .queue
                    .iter()
                    .any(|q| q.tenant == tenant && q.seq < id.seq)
                {
                    continue;
                }
                if self.cfg.policy == SharePolicy::FairShare {
                    // A tenant's *first* running job may exceed its grant —
                    // integer grants can fall below the smallest job size
                    // (many tenants, few ranks) and fairness must never
                    // become starvation. Beyond that, the grant binds.
                    let grant = grants[&tenant];
                    let used = self.tenant_ranks_running(tenant);
                    if used > 0 && used + ranks > grant {
                        continue;
                    }
                    if !self.sla_admits(id) {
                        continue;
                    }
                }
                admitted = Some(id);
                break;
            }
            let Some(id) = admitted else {
                break;
            };
            self.queue.retain(|q| *q != id);
            self.running.push(id);
            self.jobs.get_mut(&id).expect("job exists").dispatch = Some(now);
            self.rebalance(now);
            let share = self.jobs[&id].share;
            self.log(now, format!("dispatch job={id} share={share:.9e}"));
            dispatched.push(id);
        }
        dispatched
    }

    /// Price the next cycle of running job `id` at its current share
    /// (includes the dispatch-time initialization cost on the first call
    /// after dispatch).
    pub fn price_step(&mut self, id: JobId) -> StepCost {
        let (spec, share) = {
            let st = &self.jobs[&id];
            (st.spec.clone(), st.share)
        };
        self.planner.step(id, &spec, share.max(f64::MIN_POSITIVE))
    }

    /// Record that `id` ran one cycle of `dur` virtual seconds under its
    /// current share.
    pub fn finish_cycle(&mut self, id: JobId, dur: f64) {
        let st = self.jobs.get_mut(&id).expect("running job exists");
        let share = st.share;
        st.cycles_left -= 1;
        st.service_used += dur;
        st.shares_seen.push(share);
    }

    /// Remove a completed job from the running set and rebalance.
    pub fn finish_job(&mut self, id: JobId, now: f64) {
        self.running.retain(|r| *r != id);
        self.log(now, format!("complete job={id}"));
        self.rebalance(now);
    }
}
