//! Property suite for the multi-tenant scheduler.
//!
//! For seeded mixes of 2–6 tenants the fair-share invariants must hold at
//! every rebalance the simulation ever performs:
//!
//! * allocations sum to at most the capacity;
//! * no job is allocated beyond its demand;
//! * every admitted job holds at least its weighted min-share floor;
//! * the whole run — decisions, records, share trails — is bit-identical
//!   across reruns of the same seed;
//! * every admitted job eventually completes (fairness is not starvation).
//!
//! And, end to end with the real DES-backed capacity planner: jobs
//! admitted with an SLA of twice their solo prediction always finish
//! within it — the admission floor check is what the fairness bench's
//! p99 acceptance criterion rests on.

use proptest::prelude::*;
use s_enkf_sched_proptest_deps::*;

// The sched crate's test half lives behind one alias module so the
// imports read as one block.
mod s_enkf_sched_proptest_deps {
    pub use enkf_core::LocalAnalysis;
    pub use enkf_data::CycleConfig;
    pub use enkf_fault::FaultConfig;
    pub use enkf_fault::RetryPolicy;
    pub use enkf_grid::{LocalizationRadius, Mesh};
    pub use enkf_parallel::{
        model_campaign, CampaignConfig, CampaignExecutor, CampaignModelPlan, CkptMode, ModelConfig,
    };
    pub use enkf_sched::{
        min_share_floor, simulate, ClusterCapacity, Demand, DesPlanner, JobId, JobModel, JobSpec,
        Planner, SchedConfig, SharePolicy, StepCost, SubmitError, TenantId, TenantSpec,
    };
    pub use enkf_tuning::Workload;
}

/// A deterministic, closed-form planner: cycle cost grows with job size
/// and inversely with the granted share. Fast enough for hundreds of
/// simulated mixes, and bit-stable so determinism properties are exact.
struct SynthPlanner;

impl Planner for SynthPlanner {
    fn step(&mut self, _id: JobId, spec: &JobSpec, share: f64) -> StepCost {
        let work = (spec.campaign.members * spec.ranks()) as f64;
        StepCost {
            cycle: 0.5 + 0.01 * work / share,
            init: 0.1 / share,
        }
    }
}

fn base_spec(nsdx: usize, nsdy: usize, cycles: usize, bw_demand: f64) -> JobSpec {
    let campaign = CampaignConfig {
        mesh: Mesh::new(16, 8),
        cycles,
        members: 4,
        cycle: CycleConfig::default(),
        seed: 11,
        analysis: LocalAnalysis::new(LocalizationRadius { xi: 1, eta: 1 }),
        inflation: 1.0,
        restart: RetryPolicy::none(),
    };
    let mut spec = JobSpec::best_effort(CampaignExecutor::PEnkf { nsdx, nsdy }, campaign);
    spec.bw_demand = bw_demand;
    spec
}

/// One generated job: `(nsdx, nsdy, cycles, bw tenths, arrival slot)`.
type JobGene = (usize, usize, usize, u32, u32);

fn job_gene() -> impl Strategy<Value = JobGene> {
    (1usize..=2, 1usize..=2, 1usize..=3, 2u32..=10, 0u32..=8)
}

/// A tenant: weight in 1..=4 plus one to three jobs.
fn tenant_gene() -> impl Strategy<Value = (u32, Vec<JobGene>)> {
    (1u32..=4, proptest::collection::vec(job_gene(), 1..=3))
}

fn mix_gene() -> impl Strategy<Value = Vec<(u32, Vec<JobGene>)>> {
    proptest::collection::vec(tenant_gene(), 2..=6)
}

fn build_mix(genes: &[(u32, Vec<JobGene>)]) -> (Vec<TenantSpec>, Vec<(f64, TenantId, JobSpec)>) {
    let mut tenants = Vec::new();
    let mut arrivals = Vec::new();
    for (i, (weight, jobs)) in genes.iter().enumerate() {
        let spec = TenantSpec::new(i as u32, *weight as f64);
        for (nsdx, nsdy, cycles, bw, slot) in jobs {
            arrivals.push((
                *slot as f64,
                spec.id,
                base_spec(*nsdx, *nsdy, *cycles, *bw as f64 / 10.0),
            ));
        }
        tenants.push(spec);
    }
    (tenants, arrivals)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fair_share_invariants_hold_for_seeded_tenant_mixes(
        genes in mix_gene(),
        seed in 0u64..1_000,
    ) {
        let (tenants, arrivals) = build_mix(&genes);
        let cfg = SchedConfig {
            capacity: ClusterCapacity::tianhe2_like(16),
            policy: SharePolicy::FairShare,
            seed,
        };
        let out = simulate(&cfg, &tenants, &arrivals, SynthPlanner);

        // Fairness, at every rebalance the run ever performed.
        for check in &out.share_checks {
            let total: f64 = check.entries.iter().map(|(_, _, _, s)| s).sum();
            prop_assert!(total <= 1.0 + 1e-9, "shares sum to {total} > capacity");
            let demands: Vec<Demand> = check
                .entries
                .iter()
                .map(|(_, w, d, _)| Demand { weight: *w, demand: *d })
                .collect();
            for (i, (id, _, demand, share)) in check.entries.iter().enumerate() {
                prop_assert!(
                    *share <= demand + 1e-9,
                    "job {id} allocated {share} beyond its demand {demand}"
                );
                let floor = min_share_floor(1.0, &demands, i);
                prop_assert!(
                    *share + 1e-9 >= floor,
                    "job {id} got {share} < min-share floor {floor}"
                );
            }
        }

        // Liveness: every admitted job completed.
        prop_assert_eq!(out.records.len(), arrivals.len() - out.rejected.len());

        // Determinism: the same seed replays bit-identically.
        let again = simulate(&cfg, &tenants, &arrivals, SynthPlanner);
        prop_assert_eq!(out.decisions_digest, again.decisions_digest);
        prop_assert_eq!(&out.decisions, &again.decisions);
        prop_assert_eq!(out.records.len(), again.records.len());
        for (a, b) in out.records.iter().zip(&again.records) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.completion.to_bits(), b.completion.to_bits());
            prop_assert_eq!(a.shares_seen.len(), b.shares_seen.len());
            for (x, y) in a.shares_seen.iter().zip(&b.shares_seen) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}

fn modeled_spec(cycles: usize, sla_factor: f64) -> (JobSpec, f64) {
    let mut spec = base_spec(2, 2, cycles, 1.0);
    let mut cfg = ModelConfig::paper();
    cfg.workload = Workload {
        nx: 16,
        ny: 8,
        members: 4,
        h: 8,
        xi: 1,
        eta: 1,
    };
    spec.model = Some(JobModel {
        cfg,
        variant: JobSpec::variant_of(&spec.exec).unwrap(),
        checkpoint: true,
    });
    let step = DesPlanner::price(&spec, 1.0);
    let solo = step.init + cycles as f64 * step.cycle;
    spec.sla = Some(solo * sla_factor);
    (spec, solo)
}

/// The planner's step differencing is *exact* in both commit modes:
/// `init + K·cycle` reproduces the K-cycle campaign-model makespan to
/// floating-point identity, synchronous and pipelined — so SLA admission
/// reasons about exactly the schedule the dispatcher will run.
#[test]
fn des_planner_differencing_prices_both_commit_modes_exactly() {
    for pipelined in [false, true] {
        let (mut spec, _) = modeled_spec(2, 2.0);
        if pipelined {
            spec = spec.pipelined();
        }
        let model = spec.model.unwrap();
        let step = DesPlanner::price(&spec, 1.0);
        for cycles in 1..=5usize {
            let plan = CampaignModelPlan {
                cycles,
                checkpoint: model.checkpoint,
                pipelined,
                restart: spec.campaign.restart,
            };
            let (out, _) =
                model_campaign(&model.cfg, &model.variant, &plan, &FaultConfig::none()).unwrap();
            let predicted = step.init + cycles as f64 * step.cycle;
            assert!(
                (out.makespan - predicted).abs() < 1e-9,
                "pipelined={pipelined} K={cycles}: differencing {predicted} != model {}",
                out.makespan
            );
        }
        // Pipelining strictly cheapens the steady-state step (the sweep
        // comes off the critical path), never the science.
        if pipelined {
            let sync_step = DesPlanner::price(
                &JobSpec {
                    ckpt_mode: CkptMode::Sync,
                    ..modeled_spec(2, 2.0).0
                },
                1.0,
            );
            assert!(
                step.cycle < sync_step.cycle,
                "pipelined step {} must undercut sync step {}",
                step.cycle,
                sync_step.cycle
            );
        }
    }
}

/// End to end with the real DES capacity planner: four tenants, each
/// asking for twice its solo prediction, all admitted — and every one of
/// them finishes within its SLA despite sharing the machine.
#[test]
fn sla_admission_with_des_planner_keeps_service_within_twice_solo() {
    let tenants: Vec<TenantSpec> = (0..4).map(|i| TenantSpec::new(i, 1.0)).collect();
    let mut arrivals = Vec::new();
    let mut slas = std::collections::BTreeMap::new();
    for t in &tenants {
        let (spec, solo) = modeled_spec(2, 2.0);
        slas.insert(t.id, (spec.sla.unwrap(), solo));
        arrivals.push((0.0, t.id, spec));
    }
    let cfg = SchedConfig {
        capacity: ClusterCapacity::tianhe2_like(16),
        policy: SharePolicy::FairShare,
        seed: 3,
    };
    let out = simulate(&cfg, &tenants, &arrivals, DesPlanner::new());
    assert!(out.rejected.is_empty(), "rejections: {:?}", out.rejected);
    assert_eq!(out.records.len(), 4);
    for rec in &out.records {
        let (sla, solo) = slas[&rec.id.tenant];
        assert!(
            rec.service <= sla + 1e-9,
            "job {} took {} > its SLA {} (solo {})",
            rec.id,
            rec.service,
            sla,
            solo
        );
        assert_eq!(rec.solo_prediction, Some(solo));
    }
}

/// A deadline the planner cannot meet even solo is refused at submit.
#[test]
fn unattainable_sla_is_rejected_at_submit() {
    let tenants = vec![TenantSpec::new(0, 1.0)];
    let (spec, solo) = modeled_spec(2, 0.5);
    let cfg = SchedConfig {
        capacity: ClusterCapacity::tianhe2_like(16),
        policy: SharePolicy::FairShare,
        seed: 3,
    };
    let out = simulate(
        &cfg,
        &tenants,
        &[(0.0, tenants[0].id, spec)],
        DesPlanner::new(),
    );
    assert_eq!(out.rejected.len(), 1);
    match &out.rejected[0].2 {
        SubmitError::SlaUnattainable { predicted, sla } => {
            assert!((predicted - solo).abs() < 1e-9);
            assert!(*sla < *predicted);
        }
        other => panic!("expected SlaUnattainable, got {other:?}"),
    }
    assert!(out.records.is_empty());
}

/// A health snapshot with blacklisted OSTs shrinks the bandwidth pool:
/// running jobs are repriced to at most the capacity factor, the decision
/// log records the event, and reintegration restores full shares.
#[test]
fn health_snapshot_reprices_running_shares() {
    use enkf_health::{HealthMonitor, HealthParams};
    use enkf_sched::{NoPlanner, Scheduler};

    let cfg = SchedConfig {
        capacity: ClusterCapacity::tianhe2_like(16),
        policy: SharePolicy::FairShare,
        seed: 9,
    };
    let mut sched = Scheduler::new(cfg, NoPlanner);
    let tenant = TenantSpec::new(0, 1.0);
    sched.add_tenant(tenant);
    let a = sched
        .submit(0.0, tenant.id, base_spec(2, 2, 2, 1.0))
        .unwrap();
    let b = sched
        .submit(0.5, tenant.id, base_spec(2, 2, 2, 1.0))
        .unwrap();
    sched.try_dispatch(1.0);
    assert_eq!(sched.running().len(), 2);
    let healthy_share = sched.job(a).unwrap().share;
    assert!(
        (healthy_share - 0.5).abs() < 1e-12,
        "two equal jobs split 1.0"
    );

    // One of six OSTs blacklists: detect it through a real monitor so the
    // snapshot is the genuine campaign artifact, not a hand-built one.
    let mut mon = HealthMonitor::new(HealthParams::with_num_osts(6));
    for m in 0..6 {
        mon.observe_read(m % 6, m, if m % 6 == 2 { 5.0 } else { 1.0 });
    }
    let snap = mon.end_cycle();
    assert_eq!(snap.blacklisted_osts, vec![2]);
    sched.apply_health(2.0, &snap);

    assert!((sched.health_factor() - 5.0 / 6.0).abs() < 1e-12);
    for id in [a, b] {
        let share = sched.job(id).unwrap().share;
        assert!(
            (share - 5.0 / 12.0).abs() < 1e-12,
            "degraded pool must split 5/6, job {id} got {share}"
        );
    }
    assert!(
        sched
            .decisions()
            .iter()
            .any(|d| d.contains("health") && d.contains("[2]")),
        "the health event must be on the decision log"
    );

    // The OST serves its term and reintegrates: full capacity back.
    mon.end_cycle(); // blacklist term → probation
    for m in 0..6 {
        mon.observe_read(m % 6, m, 1.0);
    }
    let snap = mon.end_cycle();
    assert!(snap.is_clean());
    sched.apply_health(3.0, &snap);
    assert!((sched.job(a).unwrap().share - 0.5).abs() < 1e-12);
}
