//! Property-based tests of the real file backend: region reads must always
//! agree with whole-file reads, and the seek accounting must match the
//! layout's prediction.

use enkf_grid::{FileLayout, Mesh, RegionRect};
use enkf_pfs::{FileStore, ScratchDir};
use proptest::prelude::*;

fn mesh_strategy() -> impl Strategy<Value = Mesh> {
    (2usize..20, 2usize..16).prop_map(|(nx, ny)| Mesh::new(nx, ny))
}

fn region_strategy(mesh: Mesh) -> impl Strategy<Value = RegionRect> {
    (0..mesh.nx(), 0..mesh.ny()).prop_flat_map(move |(x0, y0)| {
        (x0 + 1..=mesh.nx(), y0 + 1..=mesh.ny())
            .prop_map(move |(x1, y1)| RegionRect::new(x0, x1, y0, y1))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn region_read_agrees_with_full_read(
        (mesh, region, levels, seed) in mesh_strategy().prop_flat_map(|mesh| {
            (Just(mesh), region_strategy(mesh), 1u64..4, any::<u32>())
        })
    ) {
        let scratch = ScratchDir::new("prop").unwrap();
        let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 8 * levels)).unwrap();
        let n = mesh.n() * levels as usize;
        let values: Vec<f64> = (0..n).map(|i| (i as f64) * 0.25 + seed as f64).collect();
        store.write_member(0, &values).unwrap();

        let full = store.read_full(0).unwrap();
        prop_assert_eq!(full.to_vec(), values.clone());

        let data = store.read_region(0, &region).unwrap();
        for (local, p) in region.iter_points().enumerate() {
            let flat = mesh.index(p);
            for level in 0..levels as usize {
                prop_assert_eq!(data.value(local, level), values[flat * levels as usize + level]);
            }
        }
    }

    #[test]
    fn seek_accounting_matches_layout(
        (mesh, region) in mesh_strategy().prop_flat_map(|mesh| (Just(mesh), region_strategy(mesh)))
    ) {
        let scratch = ScratchDir::new("prop-seek").unwrap();
        let layout = FileLayout::new(mesh, 8);
        let store = FileStore::open(scratch.path(), layout).unwrap();
        store.write_member(0, &vec![1.0; mesh.n()]).unwrap();
        store.reset_stats();
        store.read_region(0, &region).unwrap();
        let st = store.stats();
        prop_assert_eq!(st.seeks, layout.seek_count(&region) as u64);
        prop_assert_eq!(st.bytes_read, layout.region_bytes(&region));
    }

    #[test]
    fn extract_matches_direct_read(
        (mesh, outer, seed) in mesh_strategy().prop_flat_map(|mesh| {
            (Just(mesh), region_strategy(mesh), any::<u32>())
        })
    ) {
        // Any sub-rectangle extracted from an outer read equals reading it
        // directly — the invariant the bar -> block split relies on.
        let scratch = ScratchDir::new("prop-extract").unwrap();
        let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 8)).unwrap();
        let values: Vec<f64> = (0..mesh.n()).map(|i| (i as u32 ^ seed) as f64).collect();
        store.write_member(0, &values).unwrap();
        let outer_data = store.read_region(0, &outer).unwrap();
        // Take the upper-left quadrant of the outer region as inner.
        let inner = RegionRect::new(
            outer.x0,
            outer.x0 + outer.width().div_ceil(2),
            outer.y0,
            outer.y0 + outer.height().div_ceil(2),
        );
        let direct = store.read_region(0, &inner).unwrap();
        prop_assert_eq!(outer_data.extract(&inner), direct);
    }

    #[test]
    fn views_are_bit_identical_to_owned_copies(
        (mesh, outer, levels, seed) in mesh_strategy().prop_flat_map(|mesh| {
            (Just(mesh), region_strategy(mesh), 1u64..4, any::<u32>())
        })
    ) {
        // The zero-copy invariant: a view shares its parent's backing slab
        // yet `value`, `row` and `to_vec` agree bit-for-bit with a deep
        // copy of the same sub-region — including views of views.
        let scratch = ScratchDir::new("prop-view").unwrap();
        let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 8 * levels)).unwrap();
        let n = mesh.n() * levels as usize;
        let values: Vec<f64> = (0..n).map(|i| ((i as u32).wrapping_mul(seed | 1)) as f64).collect();
        store.write_member(0, &values).unwrap();
        let outer_data = store.read_region(0, &outer).unwrap();
        let inner = RegionRect::new(
            outer.x0,
            outer.x0 + outer.width().div_ceil(2),
            outer.y0,
            outer.y0 + outer.height().div_ceil(2),
        );
        let view = outer_data.extract(&inner);
        let owned = outer_data.extract_owned(&inner);
        prop_assert!(view.shares_backing(&outer_data), "extract must not copy");
        prop_assert!(!owned.shares_backing(&outer_data), "extract_owned must copy");
        prop_assert_eq!(&view, &owned);
        prop_assert_eq!(view.to_vec(), owned.to_vec());
        for local in 0..inner.npoints() {
            for level in 0..levels as usize {
                prop_assert_eq!(view.value(local, level), owned.value(local, level));
            }
        }
        // A view of the view still indexes the original slab correctly.
        let core = RegionRect::new(
            inner.x0,
            inner.x0 + inner.width().div_ceil(2),
            inner.y0,
            inner.y0 + inner.height().div_ceil(2),
        );
        let nested = view.extract(&core);
        prop_assert!(nested.shares_backing(&outer_data));
        prop_assert_eq!(nested, owned.extract_owned(&core));
    }

    #[test]
    fn pooled_and_fresh_reads_are_identical(
        (mesh, region, seed) in mesh_strategy().prop_flat_map(|mesh| {
            (Just(mesh), region_strategy(mesh), any::<u32>())
        })
    ) {
        // The pooled/bulk-converted read path must be bit-identical to the
        // pre-pool fresh-allocation baseline, with identical IoStats.
        let scratch = ScratchDir::new("prop-pool").unwrap();
        let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 8)).unwrap();
        let values: Vec<f64> = (0..mesh.n()).map(|i| (i as u32 ^ seed) as f64 * 0.5).collect();
        store.write_member(0, &values).unwrap();
        store.reset_stats();
        let pooled = store.read_region(0, &region).unwrap();
        let pooled_stats = store.stats();
        store.reset_stats();
        let fresh = store.read_region_fresh(0, &region).unwrap();
        prop_assert_eq!(pooled, fresh);
        prop_assert_eq!(pooled_stats, store.stats());
    }

    #[test]
    fn write_from_view_roundtrips(
        (mesh, outer, seed) in mesh_strategy().prop_flat_map(|mesh| {
            (Just(mesh), region_strategy(mesh), any::<u32>())
        })
    ) {
        // Writing a view (non-contiguous in its backing) through the pooled
        // write path lands the same bytes as writing an owned copy.
        let scratch = ScratchDir::new("prop-wview").unwrap();
        let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 8)).unwrap();
        let values: Vec<f64> = (0..mesh.n()).map(|i| (i as u32 ^ seed) as f64).collect();
        store.write_member(0, &values).unwrap();
        store.write_member(1, &vec![0.0; mesh.n()]).unwrap();
        store.write_member(2, &vec![0.0; mesh.n()]).unwrap();
        let outer_data = store.read_region(0, &outer).unwrap();
        let inner = RegionRect::new(
            outer.x0,
            outer.x0 + outer.width().div_ceil(2),
            outer.y0,
            outer.y0 + outer.height().div_ceil(2),
        );
        let view = outer_data.extract(&inner);
        store.write_region(1, &view).unwrap();
        store.write_region(2, &view.extract_owned(&inner)).unwrap();
        let a = std::fs::read(store.member_path(1)).unwrap();
        let b = std::fs::read(store.member_path(2)).unwrap();
        prop_assert_eq!(a, b);
        prop_assert_eq!(store.read_region(1, &inner).unwrap(), view);
    }

    #[test]
    fn conversion_kernel_bit_identical_decode(bits in proptest::collection::vec(any::<u64>(), 0..600)) {
        // The kernel-layer bulk decode must reproduce the legacy
        // chunks_exact(8) walk byte-for-byte — including NaN payloads,
        // infinities, subnormals and signed zeros (arbitrary u64 patterns).
        let mut bytes = Vec::with_capacity(bits.len() * 8);
        for b in &bits {
            bytes.extend_from_slice(&b.to_le_bytes());
        }
        let legacy: Vec<f64> = bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let mut kernel = Vec::new();
        enkf_linalg::kernel::convert::le_bytes_to_f64_into(&bytes, &mut kernel);
        prop_assert_eq!(legacy.len(), kernel.len());
        for (l, k) in legacy.iter().zip(&kernel) {
            prop_assert_eq!(l.to_bits(), k.to_bits());
        }
    }

    #[test]
    fn conversion_kernel_bit_identical_encode(bits in proptest::collection::vec(any::<u64>(), 0..600)) {
        // Encode direction: kernel bulk append vs per-value to_le_bytes,
        // both on top of a non-empty prefix (the write paths emit headers
        // into the same buffer first).
        let values: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
        let mut legacy: Vec<u8> = vec![0xAB, 0xCD];
        for v in &values {
            legacy.extend_from_slice(&v.to_le_bytes());
        }
        let mut kernel: Vec<u8> = vec![0xAB, 0xCD];
        enkf_linalg::kernel::convert::extend_f64_le(&values, &mut kernel);
        prop_assert_eq!(legacy, kernel);
    }

    #[test]
    fn conversion_roundtrip_preserves_bits(bits in proptest::collection::vec(any::<u64>(), 0..300)) {
        let values: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
        let mut bytes = Vec::new();
        enkf_linalg::kernel::convert::extend_f64_le(&values, &mut bytes);
        let mut back = Vec::new();
        enkf_linalg::kernel::convert::le_bytes_to_f64_into(&bytes, &mut back);
        prop_assert_eq!(values.len(), back.len());
        for (v, b) in values.iter().zip(&back) {
            prop_assert_eq!(v.to_bits(), b.to_bits());
        }
    }
}
