//! Read-ahead pipelining for the staged reading loop.
//!
//! The S-EnKF concurrent-group reader walks the vertical stages in order:
//! read stage `l`'s bar, split it into per-sub-domain blocks, send the
//! blocks onward. The reads and the sends are independent across stages,
//! so [`read_stages_ahead`] overlaps them: a prefetch thread reads stage
//! `l+1`'s bar (through the resilient path, with its own forked tracer)
//! while the caller's closure is still scattering stage `l`'s blocks —
//! deepening the read/compute overlap the paper's Fig. 11 measures,
//! double-buffered through the store's [`crate::store::BufferPool`].
//!
//! Digest safety: the prefetch thread performs *exactly* the reads the
//! sequential loop would (same members, same regions, same stage tags,
//! same resilient retry/backoff sequence), only earlier in wall time.
//! Trace digests are time-free sorted multisets and the fault log digest
//! sorts its records, so overlapping the reads cannot move either digest.
//! The stage plan must therefore be truncated *before* calling (e.g. at a
//! planned crash stage) — the prefetcher never reads past the plan.

use crate::resilient::read_region_adaptive;
use crate::store::{FileStore, RegionData};
use enkf_fault::{FaultInjector, SubstrateError};
use enkf_grid::RegionRect;
use enkf_health::HealthMonitor;
use enkf_trace::RankTracer;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::sync_channel;

/// Failpoint: when set, the next read-ahead reader thread panics before its
/// first read, then the flag clears itself. This is the regression hook
/// pinning that a prefetch-thread panic surfaces as
/// [`ReadAheadError::ReaderPanicked`] instead of propagating a panic out of
/// the pipelined read path. Test-only by convention; one relaxed load per
/// plan when unset.
#[doc(hidden)]
pub static FAIL_READER_PANIC: AtomicBool = AtomicBool::new(false);

/// One stage of a read plan: which members' copies of which region to read.
#[derive(Debug, Clone)]
pub struct StageRead {
    /// Vertical stage index (trace stage tag).
    pub stage: usize,
    /// The region (bar) every listed member reads at this stage.
    pub region: RegionRect,
    /// Members to read, in order.
    pub members: Vec<usize>,
}

/// Why [`read_stages_ahead`] stopped early.
#[derive(Debug)]
pub enum ReadAheadError<E> {
    /// A member read failed (after the resilient retry policy) at `stage`.
    Read {
        stage: usize,
        member: usize,
        error: SubstrateError,
    },
    /// The consumer closure returned an error.
    Consume(E),
    /// The prefetch thread panicked. The panic is contained here — spans of
    /// reads that completed before the panic are preserved in the caller's
    /// tracer, and the caller gets a typed error instead of a propagated
    /// panic (the pre-fix behaviour was an `.expect()` that tore down the
    /// whole executor).
    ReaderPanicked {
        /// The panic payload, when it was a string.
        message: String,
    },
}

/// Run a staged read plan with one-stage read-ahead.
///
/// For each entry of `stages` in order, all listed members' `region` data
/// is read via [`read_region_resilient`] and handed to `consume` together
/// with the stage descriptor and the main tracer (for send spans). While
/// `consume` runs for stage `k`, a prefetch thread is already reading
/// stage `k+1` (bounded to one stage of look-ahead by a rendezvous
/// channel, so at most two stages of bars are in flight — double
/// buffering).
///
/// Members listed in `skip_failed` (the degraded-mode dropped set) still
/// have their reads *attempted* — charging the same fault spans the
/// sequential loop charges — but a failure skips the member instead of
/// stopping the pipeline, so `consume` receives data for the plan's
/// surviving members only, in plan order.
///
/// The prefetch thread traces into a [`RankTracer::fork`] that is absorbed
/// back before returning, on success *and* on error — the spans of reads
/// that completed before a failure are preserved, matching the sequential
/// loop's accounting exactly.
pub fn read_stages_ahead<E>(
    store: &FileStore,
    injector: &FaultInjector,
    tracer: &mut RankTracer,
    stages: &[StageRead],
    skip_failed: &[usize],
    consume: impl FnMut(&StageRead, Vec<RegionData>, &mut RankTracer) -> Result<(), E>,
) -> Result<(), ReadAheadError<E>> {
    read_stages_ahead_adaptive(store, injector, tracer, stages, skip_failed, None, consume)
}

/// [`read_stages_ahead`] with online health monitoring: every member read
/// goes through [`crate::read_region_adaptive`], so a blacklisted OST
/// triggers the deterministic speculative-duplicate route and each
/// completed read reports its observed dilation ratio to the monitor. With
/// `monitor: None` this is exactly [`read_stages_ahead`].
pub fn read_stages_ahead_adaptive<E>(
    store: &FileStore,
    injector: &FaultInjector,
    tracer: &mut RankTracer,
    stages: &[StageRead],
    skip_failed: &[usize],
    monitor: Option<&HealthMonitor>,
    mut consume: impl FnMut(&StageRead, Vec<RegionData>, &mut RankTracer) -> Result<(), E>,
) -> Result<(), ReadAheadError<E>> {
    if stages.is_empty() {
        return Ok(());
    }
    let mut reader_tracer = tracer.fork();
    // Rendezvous + 1 slot: the reader may finish stage k+1 while the main
    // thread consumes stage k, and then blocks — one stage of look-ahead.
    let (tx, rx) = sync_channel::<(usize, Result<Vec<RegionData>, (usize, SubstrateError)>)>(1);
    let mut out: Result<(), ReadAheadError<E>> = Ok(());
    std::thread::scope(|scope| {
        let reader_tracer = &mut reader_tracer;
        let reader = scope.spawn(move || {
            if FAIL_READER_PANIC.swap(false, Ordering::SeqCst) {
                panic!("injected read-ahead reader panic (failpoint)");
            }
            'stages: for (idx, sr) in stages.iter().enumerate() {
                let mut bars = Vec::with_capacity(sr.members.len());
                for &member in &sr.members {
                    match read_region_adaptive(
                        store,
                        reader_tracer,
                        Some(sr.stage),
                        member,
                        &sr.region,
                        injector,
                        monitor,
                    ) {
                        Ok(data) => bars.push(data),
                        Err(_) if skip_failed.contains(&member) => {}
                        Err(e) => {
                            let _ = tx.send((idx, Err((member, e))));
                            break 'stages;
                        }
                    }
                }
                // A full buffer blocks until the consumer takes the previous
                // stage; a closed channel means the consumer bailed early.
                if tx.send((idx, Ok(bars))).is_err() {
                    break 'stages;
                }
            }
        });
        for expect in 0..stages.len() {
            let (idx, result) = match rx.recv() {
                Ok(msg) => msg,
                Err(_) => break, // reader stopped after reporting an error
            };
            debug_assert_eq!(idx, expect, "stages arrive in plan order");
            match result {
                Ok(bars) => {
                    if let Err(e) = consume(&stages[idx], bars, tracer) {
                        out = Err(ReadAheadError::Consume(e));
                        break;
                    }
                }
                Err((member, error)) => {
                    out = Err(ReadAheadError::Read {
                        stage: stages[idx].stage,
                        member,
                        error,
                    });
                    break;
                }
            }
        }
        drop(rx); // unblock the reader if we bailed mid-plan
        if let Err(payload) = reader.join() {
            // Contain the panic as a typed error; an earlier consume/read
            // error stays the root cause (the reader only panics after the
            // consumer bailed in that ordering).
            if out.is_ok() {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                out = Err(ReadAheadError::ReaderPanicked { message });
            }
        }
    });
    tracer.absorb(reader_tracer);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilient::read_region_resilient;
    use crate::{FileStore, ScratchDir};
    use enkf_fault::{FaultConfig, FaultPlan, RetryPolicy};
    use enkf_grid::{FileLayout, Mesh};
    use std::time::Instant;

    fn store(members: usize) -> (ScratchDir, FileStore) {
        let scratch = ScratchDir::new("readahead").unwrap();
        let mesh = Mesh::new(8, 8);
        let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 8)).unwrap();
        for k in 0..members {
            let v: Vec<f64> = (0..mesh.n()).map(|i| (k * 1000 + i) as f64).collect();
            store.write_member(k, &v).unwrap();
        }
        (scratch, store)
    }

    fn plan(stages: usize, members: usize) -> Vec<StageRead> {
        (0..stages)
            .map(|l| StageRead {
                stage: l,
                region: RegionRect::new(0, 8, l, l + 2),
                members: (0..members).collect(),
            })
            .collect()
    }

    fn digest_of(tracer: RankTracer) -> String {
        let mut trace = enkf_trace::Trace::new("t");
        for s in tracer.into_spans() {
            trace.push(s);
        }
        trace.digest()
    }

    #[test]
    fn matches_sequential_reads_bit_for_bit() {
        let (_s, st) = store(3);
        let inj = FaultInjector::new(FaultConfig::none());
        let stages = plan(4, 3);

        // Sequential reference.
        st.reset_stats();
        let mut seq_tracer = RankTracer::new(0, Instant::now());
        let mut seq_data: Vec<Vec<RegionData>> = Vec::new();
        for sr in &stages {
            let mut bars = Vec::new();
            for &m in &sr.members {
                bars.push(
                    read_region_resilient(
                        &st,
                        &mut seq_tracer,
                        Some(sr.stage),
                        m,
                        &sr.region,
                        &inj,
                    )
                    .unwrap(),
                );
            }
            seq_data.push(bars);
        }
        let seq_stats = st.stats();
        let seq_digest = digest_of(seq_tracer);

        st.reset_stats();
        let mut ra_tracer = RankTracer::new(0, Instant::now());
        let mut ra_data: Vec<Vec<RegionData>> = Vec::new();
        read_stages_ahead::<std::convert::Infallible>(
            &st,
            &inj,
            &mut ra_tracer,
            &stages,
            &[],
            |_, bars, _| {
                ra_data.push(bars);
                Ok(())
            },
        )
        .unwrap();

        assert_eq!(ra_data, seq_data, "payloads identical");
        assert_eq!(st.stats(), seq_stats, "accounting identical");
        assert_eq!(digest_of(ra_tracer), seq_digest, "digest identical");
    }

    #[test]
    fn consume_sees_stages_in_order() {
        let (_s, st) = store(2);
        let inj = FaultInjector::new(FaultConfig::none());
        let stages = plan(5, 2);
        let mut seen = Vec::new();
        let mut t = RankTracer::new(0, Instant::now());
        read_stages_ahead::<std::convert::Infallible>(
            &st,
            &inj,
            &mut t,
            &stages,
            &[],
            |sr, bars, _| {
                assert_eq!(bars.len(), 2);
                seen.push(sr.stage);
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn read_failure_stops_the_pipeline() {
        let (_s, st) = store(2);
        let inj = FaultInjector::new(FaultConfig::none());
        let mut stages = plan(4, 2);
        stages[2].members.push(99); // missing member fails at stage 2
        let mut seen = Vec::new();
        let mut t = RankTracer::new(0, Instant::now());
        let err = read_stages_ahead::<std::convert::Infallible>(
            &st,
            &inj,
            &mut t,
            &stages,
            &[],
            |sr, _, _| {
                seen.push(sr.stage);
                Ok(())
            },
        )
        .unwrap_err();
        match err {
            ReadAheadError::Read { stage, member, .. } => {
                assert_eq!(stage, 2);
                assert_eq!(member, 99);
            }
            other => panic!("expected read error, got {other:?}"),
        }
        assert_eq!(seen, vec![0, 1], "stages before the failure were consumed");
    }

    #[test]
    fn consume_error_aborts_without_hanging() {
        let (_s, st) = store(2);
        let inj = FaultInjector::new(FaultConfig::none());
        let stages = plan(6, 2);
        let mut t = RankTracer::new(0, Instant::now());
        let err = read_stages_ahead(&st, &inj, &mut t, &stages, &[], |sr, _, _| {
            if sr.stage == 1 {
                Err("stop")
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        match err {
            ReadAheadError::Consume(msg) => assert_eq!(msg, "stop"),
            other => panic!("expected consume error, got {other:?}"),
        }
    }

    #[test]
    fn resilient_retries_match_sequential_under_faults() {
        let (_s, st) = store(3);
        let cfg = FaultConfig::degraded(FaultPlan::new(11).with_read_fault(1, 1)).with_retry(
            RetryPolicy {
                max_retries: 2,
                base_backoff: 1e-6,
                multiplier: 2.0,
                ..RetryPolicy::default()
            },
        );
        let stages = plan(3, 3);

        let inj_seq = FaultInjector::new(cfg.clone());
        let mut seq_tracer = RankTracer::new(0, Instant::now());
        for sr in &stages {
            for &m in &sr.members {
                read_region_resilient(
                    &st,
                    &mut seq_tracer,
                    Some(sr.stage),
                    m,
                    &sr.region,
                    &inj_seq,
                )
                .unwrap();
            }
        }
        let seq_digest = digest_of(seq_tracer);
        let seq_log = inj_seq.log().digest();

        let inj_ra = FaultInjector::new(cfg);
        let mut ra_tracer = RankTracer::new(0, Instant::now());
        read_stages_ahead::<std::convert::Infallible>(
            &st,
            &inj_ra,
            &mut ra_tracer,
            &stages,
            &[],
            |_, _, _| Ok(()),
        )
        .unwrap();

        assert_eq!(digest_of(ra_tracer), seq_digest);
        assert_eq!(inj_ra.log().digest(), seq_log);
    }

    #[test]
    fn reader_panic_is_contained_as_a_typed_error() {
        let (_s, st) = store(2);
        let inj = FaultInjector::new(FaultConfig::none());
        let stages = plan(3, 2);
        let mut t = RankTracer::new(0, Instant::now());
        FAIL_READER_PANIC.store(true, std::sync::atomic::Ordering::SeqCst);
        let err = read_stages_ahead::<std::convert::Infallible>(
            &st,
            &inj,
            &mut t,
            &stages,
            &[],
            |_, _, _| Ok(()),
        )
        .unwrap_err();
        match err {
            ReadAheadError::ReaderPanicked { message } => {
                assert!(
                    message.contains("failpoint"),
                    "payload preserved: {message}"
                );
            }
            other => panic!("expected ReaderPanicked, got {other:?}"),
        }
        assert!(
            !FAIL_READER_PANIC.load(std::sync::atomic::Ordering::SeqCst),
            "failpoint clears itself"
        );
        // The pipeline must stay reusable after a contained panic.
        read_stages_ahead::<std::convert::Infallible>(
            &st,
            &inj,
            &mut t,
            &stages,
            &[],
            |_, _, _| Ok(()),
        )
        .unwrap();
    }

    #[test]
    fn empty_plan_is_a_no_op() {
        let (_s, st) = store(1);
        st.reset_stats();
        let inj = FaultInjector::new(FaultConfig::none());
        let mut t = RankTracer::new(0, Instant::now());
        read_stages_ahead::<std::convert::Infallible>(
            &st,
            &inj,
            &mut t,
            &[],
            &[],
            |_, _, _| Ok(()),
        )
        .unwrap();
        assert_eq!(st.stats(), crate::IoStats::default());
    }
}
