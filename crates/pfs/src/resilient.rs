//! Retry-with-backoff reads under a fault plan.
//!
//! The real executors read member regions through
//! [`read_region_resilient`]: attempts the fault plan marks as failing are
//! performed and discarded (so the wall cost of a failed attempt mirrors
//! the OST service the model charges), each retry waits an exponentially
//! growing backoff, and every injected failure, backoff and recovery is
//! recorded both as an [`enkf_trace::Op::Fault`] span and as a
//! [`enkf_fault::FaultLog`] event. The modeled executors weave the same
//! attempt/backoff sequence into the task graph, so the operation digests
//! of the two paths stay identical under any seeded plan.

use crate::store::{FileStore, RegionData};
use enkf_fault::{FaultInjector, ReadError, SubstrateError};
use enkf_grid::RegionRect;
use enkf_health::{HealthMonitor, ReadRoute};
use enkf_trace::RankTracer;
use std::time::{Duration, Instant};

/// Sleep for `(factor - 1) × elapsed` to dilate an operation that took
/// `elapsed` seconds to `factor ×` its natural duration.
fn dilate(start: Instant, factor: f64) {
    if factor > 1.0 {
        let elapsed = start.elapsed().as_secs_f64();
        std::thread::sleep(Duration::from_secs_f64(elapsed * (factor - 1.0)));
    }
}

/// Read `region` of member `member`, retrying under the injector's policy.
///
/// Attempt semantics (identical for both executors):
///
/// * attempts `0..fail_attempts` from the plan fail by injection — the real
///   path still performs the read (and discards it) so the attempt costs
///   real OST time, recorded as a fault span with the region's bytes/seeks;
/// * before each retry the policy's deterministic backoff is slept,
///   recorded as a zero-byte fault span;
/// * a genuine I/O failure on a non-injected attempt also consumes an
///   attempt; when retries are exhausted the last real [`ReadError`] (if
///   any) is returned as the cause;
/// * OST slowdown factors from the plan dilate every attempt's wall time.
pub fn read_region_resilient(
    store: &FileStore,
    tracer: &mut RankTracer,
    stage: Option<usize>,
    member: usize,
    region: &RegionRect,
    injector: &FaultInjector,
) -> Result<RegionData, SubstrateError> {
    let slowdown = injector.file_slowdown(member);
    read_with_policy(store, tracer, stage, member, region, injector, slowdown)
}

/// The retry loop with an explicit service-dilation factor — the shared
/// engine under [`read_region_resilient`] (primary-path dilation from the
/// member's own OST) and [`read_region_adaptive`] (dilation from whichever
/// path won the speculative race). The attempt budget is the *deadline-
/// capped* [`enkf_fault::RetryPolicy::scheduled_attempts`]: a tight
/// per-phase deadline schedules fewer attempts, and exhaustion surfaces as
/// [`SubstrateError::RetriesExhausted`] so degraded mode completes N−1
/// instead of stalling.
fn read_with_policy(
    store: &FileStore,
    tracer: &mut RankTracer,
    stage: Option<usize>,
    member: usize,
    region: &RegionRect,
    injector: &FaultInjector,
    slowdown: f64,
) -> Result<RegionData, SubstrateError> {
    let (seeks, bytes) = store.op_cost(region);
    let retry = injector.retry();
    let fails = injector.read_fail_attempts(member);
    let rank = tracer.rank();
    let mut last_real: Option<ReadError> = None;
    for attempt in 0..retry.scheduled_attempts() {
        if attempt > 0 {
            injector.log().backoff(rank, stage, member, attempt - 1);
            let pause = retry.backoff(attempt - 1);
            tracer.fault(stage, Some(member), 0, 0, || {
                std::thread::sleep(Duration::from_secs_f64(pause));
            });
        }
        if attempt < fails {
            // Injected failure: the read happens (real disk time, real OST
            // occupancy) but its result is discarded.
            injector.log().injected(rank, stage, member, attempt);
            tracer.fault(stage, Some(member), bytes, seeks, || {
                let start = Instant::now();
                let _ = store.read_region(member, region);
                dilate(start, slowdown);
            });
            continue;
        }
        let result = tracer.read(stage, Some(member), bytes, seeks, || {
            let start = Instant::now();
            let out = store.read_region(member, region);
            dilate(start, slowdown);
            out
        });
        match result {
            Ok(data) => {
                if attempt > 0 {
                    injector.log().recovered(rank, stage, member, attempt);
                }
                return Ok(data);
            }
            Err(e) => last_real = Some(e),
        }
    }
    if retry.max_retries == 0 {
        if let Some(cause) = last_real {
            // No retry policy and a genuine failure: surface it directly,
            // matching the pre-fault behaviour of a bare read.
            return Err(SubstrateError::Read(cause));
        }
    }
    Err(SubstrateError::RetriesExhausted {
        member,
        attempts: retry.scheduled_attempts(),
        cause: last_real,
    })
}

/// Health-aware read: consult the monitor's frozen [`enkf_health::RouteView`]
/// and either read the primary path exactly like [`read_region_resilient`]
/// (byte-identical spans — the no-fault parity guarantee) or, when the
/// member stripes to a blacklisted OST, issue a speculative duplicate on
/// the replica path. The race winner is the deterministic
/// [`ReadRoute::Speculate::replica_wins`] tie-break; the loser is cancelled
/// at first completion and charged as a zero-duration fault marker span
/// carrying the region's footprint, so the trace digest records the
/// duplicate without distorting the makespan. Every served read feeds one
/// observation back into the monitor.
///
/// `monitor == None` is the passthrough: bit-identical to
/// [`read_region_resilient`]. The monitor's `num_osts` must match the
/// fault plan's striping modulus for routing to price paths correctly.
pub fn read_region_adaptive(
    store: &FileStore,
    tracer: &mut RankTracer,
    stage: Option<usize>,
    member: usize,
    region: &RegionRect,
    injector: &FaultInjector,
    monitor: Option<&HealthMonitor>,
) -> Result<RegionData, SubstrateError> {
    let Some(mon) = monitor else {
        return read_region_resilient(store, tracer, stage, member, region, injector);
    };
    let view = mon.view();
    let ost = view.ost_of(member);
    let primary_factor = injector.ost_factor(ost);
    let replica_factor = injector.ost_factor(view.replica_of(ost));
    match view.route(member, primary_factor, replica_factor) {
        ReadRoute::Primary => {
            let out = read_with_policy(
                store,
                tracer,
                stage,
                member,
                region,
                injector,
                primary_factor,
            )?;
            mon.observe_read(ost, member, primary_factor);
            Ok(out)
        }
        ReadRoute::Speculate {
            replica,
            replica_wins,
        } => {
            mon.speculated(tracer.rank(), stage, member, ost, replica, replica_wins);
            let (winner_ost, winner_factor) = if replica_wins {
                (replica, replica_factor)
            } else {
                (ost, primary_factor)
            };
            // The losing duplicate, cancelled at first completion: a
            // zero-duration marker span with the region's footprint.
            let (seeks, bytes) = store.op_cost(region);
            tracer.fault(stage, Some(member), bytes, seeks, || {});
            let out = read_with_policy(
                store,
                tracer,
                stage,
                member,
                region,
                injector,
                winner_factor,
            )?;
            mon.observe_read(winner_ost, member, winner_factor);
            Ok(out)
        }
    }
}

/// [`read_region_adaptive`] over the whole mesh.
pub fn read_full_adaptive(
    store: &FileStore,
    tracer: &mut RankTracer,
    stage: Option<usize>,
    member: usize,
    injector: &FaultInjector,
    monitor: Option<&HealthMonitor>,
) -> Result<RegionData, SubstrateError> {
    let region = RegionRect::full(store.layout().mesh());
    read_region_adaptive(store, tracer, stage, member, &region, injector, monitor)
}

/// [`read_region_resilient`] over the whole mesh.
pub fn read_full_resilient(
    store: &FileStore,
    tracer: &mut RankTracer,
    stage: Option<usize>,
    member: usize,
    injector: &FaultInjector,
) -> Result<RegionData, SubstrateError> {
    let region = RegionRect::full(store.layout().mesh());
    read_region_resilient(store, tracer, stage, member, &region, injector)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FileStore, ScratchDir};
    use enkf_fault::{FaultConfig, FaultEvent, FaultPlan, RetryPolicy};
    use enkf_grid::{FileLayout, Mesh};
    use std::time::Instant;

    fn store() -> (ScratchDir, FileStore) {
        let scratch = ScratchDir::new("resilient").unwrap();
        let mesh = Mesh::new(8, 4);
        let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 8)).unwrap();
        for k in 0..2 {
            let v: Vec<f64> = (0..mesh.n()).map(|i| (k * 100 + i) as f64).collect();
            store.write_member(k, &v).unwrap();
        }
        (scratch, store)
    }

    fn tracer() -> RankTracer {
        RankTracer::new(0, Instant::now())
    }

    fn into_trace(t: RankTracer) -> enkf_trace::Trace {
        let mut trace = enkf_trace::Trace::new("test");
        for s in t.into_spans() {
            trace.push(s);
        }
        trace
    }

    #[test]
    fn no_fault_read_is_a_plain_read_span() {
        let (_s, store, inj) = {
            let (s, st) = store();
            (s, st, FaultInjector::new(FaultConfig::none()))
        };
        let mut t = tracer();
        let data = read_full_resilient(&store, &mut t, None, 0, &inj).unwrap();
        assert_eq!(data.len(), 32);
        let trace = into_trace(t);
        assert_eq!(trace.spans().len(), 1);
        assert!(trace.digest().contains("op=read"));
        assert!(!trace.digest().contains("op=fault"));
        assert!(inj.log().is_empty());
    }

    #[test]
    fn injected_failures_retry_and_recover() {
        let (_s, st) = store();
        let plan = FaultPlan::new(7).with_read_fault(0, 2);
        let cfg = FaultConfig::degraded(plan).with_retry(RetryPolicy {
            max_retries: 3,
            base_backoff: 1e-6,
            multiplier: 2.0,
            ..RetryPolicy::default()
        });
        let inj = FaultInjector::new(cfg);
        let mut t = tracer();
        let data = read_full_resilient(&st, &mut t, Some(1), 0, &inj).unwrap();
        assert_eq!(data.len(), 32);
        // 2 injected fail spans + 2 backoff spans + 1 successful read.
        let trace = into_trace(t);
        let faults = trace
            .spans()
            .iter()
            .filter(|s| s.op.label() == "fault")
            .count();
        assert_eq!(faults, 4);
        let events: Vec<FaultEvent> = inj.log().records().iter().map(|r| r.event).collect();
        assert_eq!(
            events,
            vec![
                FaultEvent::ReadFaultInjected,
                FaultEvent::RetryBackoff,
                FaultEvent::ReadFaultInjected,
                FaultEvent::RetryBackoff,
                FaultEvent::ReadRecovered,
            ]
        );
    }

    #[test]
    fn unrecoverable_member_exhausts_retries_with_no_real_cause() {
        let (_s, st) = store();
        let plan = FaultPlan::new(7).with_unrecoverable_member(1);
        let cfg = FaultConfig::degraded(plan).with_retry(RetryPolicy {
            max_retries: 1,
            base_backoff: 1e-6,
            multiplier: 2.0,
            ..RetryPolicy::default()
        });
        let inj = FaultInjector::new(cfg);
        let mut t = tracer();
        let err = read_full_resilient(&st, &mut t, None, 1, &inj).unwrap_err();
        match err {
            SubstrateError::RetriesExhausted {
                member,
                attempts,
                cause,
            } => {
                assert_eq!(member, 1);
                assert_eq!(attempts, 2);
                assert!(cause.is_none(), "all failures were injected");
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn adaptive_without_monitor_is_the_resilient_path() {
        let (_s, st) = store();
        let cfg = FaultConfig::degraded(FaultPlan::new(3).with_read_fault(0, 1)).with_retry(
            RetryPolicy {
                max_retries: 2,
                base_backoff: 1e-6,
                multiplier: 2.0,
                ..RetryPolicy::default()
            },
        );
        let inj_a = FaultInjector::new(cfg.clone());
        let mut ta = tracer();
        let da = read_full_adaptive(&st, &mut ta, None, 0, &inj_a, None).unwrap();
        let inj_b = FaultInjector::new(cfg);
        let mut tb = tracer();
        let db = read_full_resilient(&st, &mut tb, None, 0, &inj_b).unwrap();
        assert_eq!(da, db);
        assert_eq!(into_trace(ta).digest(), into_trace(tb).digest());
        assert_eq!(inj_a.log().digest(), inj_b.log().digest());
    }

    #[test]
    fn adaptive_with_clean_view_matches_resilient_and_observes() {
        let (_s, st) = store();
        let plan = FaultPlan::new(5)
            .with_num_osts(4)
            .with_ost_slowdown(1, 1.0001);
        let cfg = FaultConfig::degraded(plan);
        let inj = FaultInjector::new(cfg.clone());
        let mon = enkf_health::HealthMonitor::new(enkf_health::HealthParams::with_num_osts(4));
        let mut t = tracer();
        let d = read_full_adaptive(&st, &mut t, None, 1, &inj, Some(&mon)).unwrap();
        assert_eq!(d.len(), 32);
        let trace = into_trace(t);
        assert!(trace.digest().contains("op=read"));
        assert!(
            !trace.digest().contains("op=fault"),
            "no speculation on a clean view"
        );
        // The serving OST's dilation ratio was observed.
        let inj_ref = FaultInjector::new(cfg);
        let mut tr = tracer();
        let dr = read_full_resilient(&st, &mut tr, None, 1, &inj_ref).unwrap();
        assert_eq!(d, dr);
        assert_eq!(trace.digest(), into_trace(tr).digest());
    }

    #[test]
    fn blacklisted_ost_speculates_to_the_replica() {
        let (_s, st) = store();
        // OST 1 is 4× slow; member 1 stripes to it, replica is OST 2.
        let plan = FaultPlan::new(9).with_num_osts(4).with_ost_slowdown(1, 4.0);
        let inj = FaultInjector::new(FaultConfig::degraded(plan));
        let mut mon = enkf_health::HealthMonitor::new(enkf_health::HealthParams::with_num_osts(4));
        // Warm-up cycle: the monitor sees the dilation and blacklists OST 1.
        mon.observe_read(1, 1, 4.0);
        let snap = mon.end_cycle();
        assert_eq!(snap.blacklisted_osts, vec![1]);

        let mut t = tracer();
        let d = read_full_adaptive(&st, &mut t, Some(0), 1, &inj, Some(&mon)).unwrap();
        assert_eq!(d.len(), 32, "payload is the real file contents");
        let trace = into_trace(t);
        // One cancelled-duplicate marker + one winning read.
        assert!(trace.digest().contains("op=fault"));
        assert!(trace.digest().contains("op=read"));
        let hd = mon.digest();
        assert!(hd.contains("event=speculated"));
        assert!(
            hd.contains("event=replica-won"),
            "healthy replica wins: {hd}"
        );
        assert!(hd.contains("replica=2"));
    }

    #[test]
    fn blacklisted_replica_keeps_the_primary_as_winner() {
        let (_s, st) = store();
        let plan = FaultPlan::new(9)
            .with_num_osts(4)
            .with_ost_slowdown(1, 4.0)
            .with_ost_slowdown(2, 8.0);
        let inj = FaultInjector::new(FaultConfig::degraded(plan));
        let mut mon = enkf_health::HealthMonitor::new(enkf_health::HealthParams::with_num_osts(4));
        mon.observe_read(1, 1, 4.0);
        mon.observe_read(2, 2, 8.0);
        let snap = mon.end_cycle();
        assert_eq!(snap.blacklisted_osts, vec![1, 2]);
        let mut t = tracer();
        read_full_adaptive(&st, &mut t, None, 1, &inj, Some(&mon)).unwrap();
        let hd = mon.digest();
        assert!(hd.contains("event=speculated"));
        assert!(
            !hd.contains("event=replica-won"),
            "a blacklisted replica must not win: {hd}"
        );
    }

    #[test]
    fn deadline_budget_caps_attempts_and_degrades() {
        let (_s, st) = store();
        // 2 injected failures need 3 attempts; the deadline affords only 1.
        let plan = FaultPlan::new(7).with_read_fault(0, 2);
        let cfg = FaultConfig::degraded(plan).with_retry(
            RetryPolicy {
                max_retries: 3,
                base_backoff: 1.0,
                multiplier: 2.0,
                ..RetryPolicy::default()
            }
            .with_deadline(0.5),
        );
        let inj = FaultInjector::new(cfg);
        assert!(
            inj.is_unrecoverable(0),
            "deadline exhaustion widens the dropout set (N−1 path)"
        );
        let mut t = tracer();
        let err = read_full_resilient(&st, &mut t, None, 0, &inj).unwrap_err();
        match err {
            SubstrateError::RetriesExhausted { attempts, .. } => {
                assert_eq!(attempts, 1, "the deadline affords a single attempt");
            }
            other => panic!("unexpected error: {other}"),
        }
        // No backoff was slept: the lone attempt's fault span only.
        let trace = into_trace(t);
        assert!(trace.digest().contains("op=fault"));
        assert!(!trace.digest().contains("op=read"));
    }

    #[test]
    fn real_failure_without_retries_surfaces_read_error() {
        let (_s, st) = store();
        let inj = FaultInjector::new(FaultConfig::none());
        let mut t = tracer();
        let err = read_full_resilient(&st, &mut t, None, 9, &inj).unwrap_err();
        match err {
            SubstrateError::Read(e) => {
                assert_eq!(e.member, 9);
                assert_eq!(e.actual, 0);
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn real_failure_with_retries_reports_cause() {
        let (_s, st) = store();
        let cfg = FaultConfig::none().with_retry(RetryPolicy {
            max_retries: 2,
            base_backoff: 1e-6,
            multiplier: 2.0,
            ..RetryPolicy::default()
        });
        let inj = FaultInjector::new(cfg);
        let mut t = tracer();
        let err = read_full_resilient(&st, &mut t, None, 9, &inj).unwrap_err();
        match err {
            SubstrateError::RetriesExhausted {
                member,
                attempts,
                cause,
            } => {
                assert_eq!(member, 9);
                assert_eq!(attempts, 3);
                assert_eq!(cause.unwrap().member, 9);
            }
            other => panic!("unexpected error: {other}"),
        }
    }
}
