//! The real file backend: ensemble members as files on local disk.
//!
//! Each background ensemble member `X^{b[k]}` is one file (`member_XXXX.bin`)
//! holding the mesh row-priority with `h = 8·levels` bytes per grid point
//! (little-endian `f64` per vertical level). Region reads are issued
//! segment-by-segment exactly as [`enkf_grid::FileLayout`] predicts, so the
//! seek/byte accounting of the real backend matches what the DES model
//! charges for.
//!
//! # Zero-copy data plane
//!
//! The store is the hot edge of the read/scatter path, so it avoids the
//! pure-software taxes the paper's C/MPI implementation never paid:
//!
//! * [`RegionData`] is an offset-indexed **view** over an `Arc`-shared
//!   backing slab. [`RegionData::extract`] (bar → per-sub-domain block
//!   splitting) is O(1) and allocation-free: every block sent to a compute
//!   rank is a refcount bump on the bar's single allocation, not a copy.
//! * A [`BufferPool`] recycles the raw byte buffers and the `f64` slabs:
//!   once warm, [`FileStore::read_region`] performs **zero heap
//!   allocations** (slabs return to the pool automatically when the last
//!   view into them drops).
//! * Byte→`f64` conversion is bulk (`chunks_exact` over the raw buffer)
//!   instead of a scalar cursor loop, and a small open-file-handle cache
//!   removes the per-read `File::open`.
//!
//! None of this changes what is counted: `IoStats` seeks/bytes and the
//! [`FileStore::op_cost`] contract are byte-identical to the pre-pool
//! implementation, so real-vs-model trace digests are unaffected.

use enkf_fault::ReadError;
use enkf_grid::{FileLayout, RegionRect};
use parking_lot::Mutex;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Cumulative I/O accounting for a store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Number of disk addressing operations (seeks) issued.
    pub seeks: u64,
    /// Bytes read from disk.
    pub bytes_read: u64,
    /// Bytes written to disk.
    pub bytes_written: u64,
}

/// The values of one region of one ensemble member, in the region's
/// row-priority local order, `levels` values per point — implemented as an
/// offset-indexed view over a shared backing slab.
///
/// A freshly read region owns a slab covering exactly its own points;
/// [`RegionData::extract`] returns a sub-view sharing the same slab (O(1),
/// no copy), which is what travels through channels when a bar is fanned
/// out to its sub-domain blocks.
#[derive(Debug, Clone)]
pub struct RegionData {
    region: RegionRect,
    levels: usize,
    /// Backing slab, shared between all views split from one read.
    values: Arc<Vec<f64>>,
    /// Index in `values` of the region's first point's level-0 value.
    base: usize,
    /// Values per backing row (backing width × levels).
    row_stride: usize,
}

impl RegionData {
    /// Owned region data from a contiguous local-row-major value vector
    /// (`region.npoints() * levels` values).
    pub fn from_vec(region: RegionRect, levels: usize, values: Vec<f64>) -> Self {
        Self::from_shared(region, levels, Arc::new(values))
    }

    /// Owned region data over an already-shared slab covering exactly
    /// `region` in local row-major order.
    pub(crate) fn from_shared(region: RegionRect, levels: usize, values: Arc<Vec<f64>>) -> Self {
        assert_eq!(
            values.len(),
            region.npoints() * levels,
            "value count mismatch"
        );
        RegionData {
            region,
            levels,
            values,
            base: 0,
            row_stride: region.width() * levels,
        }
    }

    /// The region the values cover.
    #[inline]
    pub fn region(&self) -> RegionRect {
        self.region
    }

    /// Values per grid point (vertical levels).
    #[inline]
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Grid points covered.
    #[inline]
    pub fn npoints(&self) -> usize {
        self.region.npoints()
    }

    /// Total values covered (`npoints() * levels()`).
    #[inline]
    pub fn len(&self) -> usize {
        self.npoints() * self.levels
    }

    /// True when the region covers no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.region.is_empty()
    }

    /// Value at a region-local point index and vertical level.
    #[inline]
    pub fn value(&self, local: usize, level: usize) -> f64 {
        debug_assert!(level < self.levels);
        let w = self.region.width();
        self.values[self.base + (local / w) * self.row_stride + (local % w) * self.levels + level]
    }

    /// One local row (latitude line) of the view: `width() * levels`
    /// contiguous values. Row-wise access avoids the per-value index
    /// arithmetic of [`RegionData::value`].
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.region.height());
        let start = self.base + r * self.row_stride;
        &self.values[start..start + self.region.width() * self.levels]
    }

    /// Iterate the surface (level-0) values in local row-priority order —
    /// the analysis variable the executors assemble into `X̄ᵇ` columns.
    pub fn surface(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.region.height())
            .flat_map(move |r| self.row(r).iter().step_by(self.levels).copied())
    }

    /// The whole view when it is contiguous in its backing slab (owned
    /// data, full-backing-width views, and single-row views), else `None`.
    pub fn as_contiguous(&self) -> Option<&[f64]> {
        if self.region.height() <= 1 || self.row_stride == self.region.width() * self.levels {
            Some(&self.values[self.base..self.base + self.len()])
        } else {
            None
        }
    }

    /// Copy out into a contiguous local-row-major vector.
    pub fn to_vec(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len());
        for r in 0..self.region.height() {
            out.extend_from_slice(self.row(r));
        }
        out
    }

    /// Extract the sub-region `inner` (must be contained in `self.region`)
    /// as a **view** sharing this data's backing slab — how a bar is split
    /// into the per-sub-domain blocks that I/O processors send onward. O(1):
    /// the returned value is an offset, a stride and a refcount bump.
    pub fn extract(&self, inner: &RegionRect) -> RegionData {
        assert!(
            self.region.contains_rect(inner),
            "extract region escapes data"
        );
        if inner.is_empty() {
            return RegionData {
                region: *inner,
                levels: self.levels,
                values: Arc::clone(&self.values),
                base: 0,
                row_stride: 0,
            };
        }
        RegionData {
            region: *inner,
            levels: self.levels,
            values: Arc::clone(&self.values),
            base: self.base
                + (inner.y0 - self.region.y0) * self.row_stride
                + (inner.x0 - self.region.x0) * self.levels,
            row_stride: self.row_stride,
        }
    }

    /// [`RegionData::extract`] as a deep copy with its own backing slab.
    /// The pre-view behaviour: used as the benchmark baseline and to detach
    /// a small block from a large backing so the backing can be reclaimed.
    pub fn extract_owned(&self, inner: &RegionRect) -> RegionData {
        let view = self.extract(inner);
        RegionData::from_vec(*inner, self.levels, view.to_vec())
    }

    /// True when the two views index into the same backing slab (the
    /// zero-copy invariant the tests pin).
    pub fn shares_backing(&self, other: &RegionData) -> bool {
        Arc::ptr_eq(&self.values, &other.values)
    }
}

impl PartialEq for RegionData {
    /// Logical equality: same region, same levels, same values — a view and
    /// an owned copy of the same data compare equal.
    fn eq(&self, other: &Self) -> bool {
        self.region == other.region
            && self.levels == other.levels
            && (0..self.region.height()).all(|r| self.row(r) == other.row(r))
    }
}

/// Reusable buffers for the read/write data plane.
///
/// Raw byte buffers are checked out and returned explicitly around each
/// read/write. `f64` slabs are *registered*: the pool keeps one `Arc`
/// reference to every slab it hands out, and a slab becomes reusable as
/// soon as every [`RegionData`] view into it has been dropped (the pool's
/// reference is then the only one left, observable via the refcount). No
/// drop plumbing crosses the channel layer.
#[derive(Debug, Default)]
pub struct BufferPool {
    bytes: Mutex<Vec<Vec<u8>>>,
    slabs: Mutex<Vec<Arc<Vec<f64>>>>,
}

impl BufferPool {
    /// Upper bound on pooled entries of each kind; beyond it buffers are
    /// simply dropped (freed when their views drop) instead of retained.
    const MAX_POOLED: usize = 64;

    /// A byte buffer of exactly `len` bytes (recycled when possible).
    /// Public so encode layers above the store (e.g. the checkpoint
    /// member encoder) can stage payloads through the same pool.
    pub fn take_bytes(&self, len: usize) -> Vec<u8> {
        let mut buf = self.bytes.lock().pop().unwrap_or_default();
        buf.clear();
        buf.resize(len, 0);
        buf
    }

    /// Return a byte buffer to the pool.
    pub fn put_bytes(&self, buf: Vec<u8>) {
        let mut bytes = self.bytes.lock();
        if bytes.len() < Self::MAX_POOLED {
            bytes.push(buf);
        }
    }

    /// A uniquely-owned slab (`strong_count == 1`), recycled from the pool
    /// when any registered slab has no outstanding views.
    fn take_slab(&self) -> Arc<Vec<f64>> {
        let mut slabs = self.slabs.lock();
        if let Some(pos) = slabs.iter().position(|s| Arc::strong_count(s) == 1) {
            // The pool holds the only reference, so nobody can clone it
            // concurrently: unique ownership is stable once removed.
            return slabs.swap_remove(pos);
        }
        Arc::new(Vec::new())
    }

    /// Register a slab for future reuse (keeps one pool-owned reference).
    fn register(&self, slab: Arc<Vec<f64>>) {
        let mut slabs = self.slabs.lock();
        if slabs.len() < Self::MAX_POOLED {
            slabs.push(slab);
        }
    }

    /// Number of registered slabs currently reusable (no live views).
    pub fn free_slabs(&self) -> usize {
        self.slabs
            .lock()
            .iter()
            .filter(|s| Arc::strong_count(s) == 1)
            .count()
    }
}

/// Bulk little-endian byte → `f64` conversion (allocation-free when
/// `dst` has capacity). Routed through the shared `enkf-linalg` kernel
/// layer: on little-endian targets the decode is one bulk copy instead of
/// a per-element `chunks_exact(8)` walk. Bit-identity with the legacy
/// walk is pinned by the `conversion_kernel_bit_identical_*` proptests.
fn bytes_to_f64(src: &[u8], dst: &mut Vec<f64>) {
    enkf_linalg::kernel::convert::le_bytes_to_f64_into(src, dst);
}

/// Small MRU cache of open member-file read handles, replacing the
/// per-call `File::open`. Handles are checked out exclusively (removed
/// while in use) so concurrent readers of the same member never share a
/// seek cursor.
#[derive(Debug, Default)]
struct HandleCache {
    entries: Vec<(usize, File)>,
}

impl HandleCache {
    const MAX_HANDLES: usize = 32;

    fn take(&mut self, member: usize) -> Option<File> {
        let pos = self.entries.iter().position(|(k, _)| *k == member)?;
        Some(self.entries.remove(pos).1)
    }

    fn put(&mut self, member: usize, file: File) {
        if self.entries.iter().any(|(k, _)| *k == member) {
            return; // another reader already returned a handle for it
        }
        if self.entries.len() >= Self::MAX_HANDLES {
            self.entries.remove(0); // least recently returned
        }
        self.entries.push((member, file));
    }

    fn invalidate(&mut self, member: usize) {
        self.entries.retain(|(k, _)| *k != member);
    }
}

/// A directory of ensemble-member files with a fixed layout.
///
/// ```
/// use enkf_grid::{FileLayout, Mesh, RegionRect};
/// use enkf_pfs::{FileStore, ScratchDir};
///
/// let scratch = ScratchDir::new("doc").unwrap();
/// let mesh = Mesh::new(8, 4);
/// let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 8)).unwrap();
/// store.write_member(0, &vec![1.5; mesh.n()]).unwrap();
/// // A full-width bar reads with a single disk addressing operation.
/// let bar = RegionRect::new(0, 8, 1, 3);
/// let data = store.read_region(0, &bar).unwrap();
/// assert_eq!(data.len(), bar.npoints());
/// assert_eq!(store.stats().seeks, 1);
/// ```
#[derive(Debug)]
pub struct FileStore {
    root: PathBuf,
    layout: FileLayout,
    stats: Mutex<IoStats>,
    pool: BufferPool,
    handles: Mutex<HandleCache>,
    /// Contiguous-from-0 member count, computed once at `open` and advanced
    /// by `write_member`/`create_member` (replaces the unbounded `stat`
    /// probe loop `num_members` used to run on every call).
    members: Mutex<usize>,
}

impl FileStore {
    /// Open (creating the directory if needed) a store rooted at `root`.
    ///
    /// `layout.bytes_per_point()` must be a multiple of 8 (whole `f64`
    /// levels per point).
    pub fn open(root: impl AsRef<Path>, layout: FileLayout) -> std::io::Result<Self> {
        assert!(
            layout.bytes_per_point().is_multiple_of(8) && layout.bytes_per_point() > 0,
            "bytes per point must be a positive multiple of 8"
        );
        std::fs::create_dir_all(root.as_ref())?;
        let root = root.as_ref().to_path_buf();
        let member_path = |k: usize| root.join(format!("member_{k:05}.bin"));
        let members = (0..).take_while(|&k| member_path(k).is_file()).count();
        Ok(FileStore {
            root,
            layout,
            stats: Mutex::new(IoStats::default()),
            pool: BufferPool::default(),
            handles: Mutex::new(HandleCache::default()),
            members: Mutex::new(members),
        })
    }

    /// The layout shared by every member file.
    pub fn layout(&self) -> FileLayout {
        self.layout
    }

    /// Vertical levels per point (`h / 8`).
    pub fn levels(&self) -> usize {
        (self.layout.bytes_per_point() / 8) as usize
    }

    /// Path of member `k`'s file.
    pub fn member_path(&self, k: usize) -> PathBuf {
        self.root.join(format!("member_{k:05}.bin"))
    }

    /// Number of member files present (contiguous from 0). Cached: scanned
    /// once at [`FileStore::open`], advanced by member writes. Files placed
    /// in the directory behind this store's back are only discovered when a
    /// write lands adjacent to them.
    pub fn num_members(&self) -> usize {
        *self.members.lock()
    }

    /// Advance the cached member count after member `k` was written.
    fn note_member(&self, k: usize) {
        let mut n = self.members.lock();
        if k == *n {
            *n += 1;
            // Absorb any files beyond the old frontier (e.g. written by a
            // previous store instance on the same directory).
            while self.member_path(*n).is_file() {
                *n += 1;
            }
        }
    }

    /// The store's buffer pool (exposed for allocation-regression tests and
    /// benchmarks).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// `(seeks, bytes)` a region access costs under this store's layout —
    /// exactly what [`FileStore::read_region`]/[`FileStore::write_region`]
    /// will add to [`FileStore::stats`], and exactly what the DES model
    /// charges for the same region. Used to label execution-trace spans so
    /// the real and modeled paths account operations identically.
    pub fn op_cost(&self, region: &RegionRect) -> (u64, u64) {
        (
            self.layout.seek_count(region) as u64,
            self.layout.region_bytes(region),
        )
    }

    /// Cumulative I/O statistics.
    pub fn stats(&self) -> IoStats {
        *self.stats.lock()
    }

    /// Reset the I/O statistics (e.g. between measured phases).
    pub fn reset_stats(&self) {
        *self.stats.lock() = IoStats::default();
    }

    /// Build the structured read failure context (error path only — the
    /// steady-state success path never touches `member_path` or `metadata`).
    fn read_error(&self, k: usize, expected: u64, detail: std::io::Error) -> ReadError {
        let path = self.member_path(k);
        ReadError {
            member: k,
            expected,
            actual: std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
            detail: detail.to_string(),
            path,
        }
    }

    /// Scratch path a member's replacement is staged at before the atomic
    /// rename. Lives in the member's directory so the rename never crosses
    /// a filesystem; the `.tmp` suffix keeps it invisible to `open`'s
    /// member scan and to [`FileStore::member_path`]-based reads.
    fn member_tmp_path(&self, k: usize) -> PathBuf {
        self.root.join(format!("member_{k:05}.bin.tmp"))
    }

    /// Stage `buf` at the member's temp path, optionally fsync, and rename
    /// it over the final path — readers see either the old file or the new
    /// one, never a torn intermediate. The open-handle cache is invalidated
    /// *after* the swap: a cached handle still maps the old inode, which
    /// stays readable but stale.
    fn swap_member_file(&self, k: usize, buf: &[u8], durable: bool) -> std::io::Result<()> {
        let tmp = self.member_tmp_path(k);
        let mut f = File::create(&tmp)?;
        f.write_all(buf)?;
        if durable {
            f.sync_all()?;
        }
        drop(f);
        std::fs::rename(&tmp, self.member_path(k))?;
        if durable {
            // Persist the rename itself: fsync the containing directory.
            File::open(&self.root).and_then(|d| d.sync_all())?;
        }
        self.handles.lock().invalidate(k);
        Ok(())
    }

    /// Write member `k` from mesh-ordered values (`n · levels` values,
    /// `levels` consecutive values per point).
    ///
    /// The write is atomic: bytes are staged at a temp path in the same
    /// directory and renamed over the member file, so a crash mid-write can
    /// never leave a torn member — readers observe the old contents or the
    /// new, nothing in between.
    pub fn write_member(&self, k: usize, values: &[f64]) -> std::io::Result<()> {
        self.write_member_impl(k, values, false)
    }

    /// [`FileStore::write_member`] with durability: the staged file is
    /// fsynced before the rename and the directory after it, so a completed
    /// call survives power loss — the temp-file + fsync + rename protocol
    /// checkpoints are built on.
    pub fn write_member_durable(&self, k: usize, values: &[f64]) -> std::io::Result<()> {
        self.write_member_impl(k, values, true)
    }

    /// [`FileStore::write_member_durable`] from pre-encoded little-endian
    /// bytes. For callers that already hold the member's byte image (e.g.
    /// the checkpoint encoder, which checksums the same bytes it writes)
    /// this skips a second f64 → LE conversion.
    pub fn write_member_bytes_durable(&self, k: usize, bytes: &[u8]) -> std::io::Result<()> {
        let expect = 8 * self.layout.mesh().n() * self.levels();
        assert_eq!(bytes.len(), expect, "member byte count mismatch");
        self.swap_member_file(k, bytes, true)?;
        self.stats.lock().bytes_written += bytes.len() as u64;
        self.note_member(k);
        Ok(())
    }

    fn write_member_impl(&self, k: usize, values: &[f64], durable: bool) -> std::io::Result<()> {
        let expect = self.layout.mesh().n() * self.levels();
        assert_eq!(values.len(), expect, "member value count mismatch");
        let mut buf = self.pool.take_bytes(0);
        enkf_linalg::kernel::convert::extend_f64_le(values, &mut buf);
        let result = self.swap_member_file(k, &buf, durable);
        let written = buf.len() as u64;
        self.pool.put_bytes(buf);
        result?;
        self.stats.lock().bytes_written += written;
        self.note_member(k);
        Ok(())
    }

    /// Read one region of member `k`, issuing one seek + read per contiguous
    /// segment (full-width regions are a single segment).
    ///
    /// Once the pool and the handle cache are warm this performs zero heap
    /// allocations: the raw buffer and the `f64` slab are recycled, and the
    /// returned [`RegionData`] shares the slab by refcount.
    ///
    /// Failures return a structured [`ReadError`] carrying the path, the
    /// member, the bytes the region required and the bytes actually present
    /// — the context the executors' failure paths propagate instead of a
    /// bare `io::Error` string.
    pub fn read_region(&self, k: usize, region: &RegionRect) -> Result<RegionData, ReadError> {
        let total = self.layout.region_bytes(region) as usize;
        let mut file = match self.handles.lock().take(k) {
            Some(f) => f,
            None => {
                File::open(self.member_path(k)).map_err(|e| self.read_error(k, total as u64, e))?
            }
        };
        let mut raw = self.pool.take_bytes(total);
        let mut cursor = 0usize;
        let mut seeks = 0u64;
        let mut io_err: Option<std::io::Error> = None;
        self.layout.for_each_segment(region, |seg| {
            if io_err.is_some() {
                return;
            }
            let res = file
                .seek(SeekFrom::Start(seg.offset))
                .and_then(|_| file.read_exact(&mut raw[cursor..cursor + seg.len as usize]));
            match res {
                Ok(()) => {
                    cursor += seg.len as usize;
                    seeks += 1;
                }
                Err(e) => io_err = Some(e),
            }
        });
        if let Some(e) = io_err {
            self.pool.put_bytes(raw);
            return Err(self.read_error(k, total as u64, e));
        }
        {
            let mut st = self.stats.lock();
            st.seeks += seeks;
            st.bytes_read += total as u64;
        }
        let mut slab = self.pool.take_slab();
        bytes_to_f64(&raw, Arc::get_mut(&mut slab).expect("pool slab is unique"));
        self.pool.put_bytes(raw);
        self.handles.lock().put(k, file);
        let data = RegionData::from_shared(*region, self.levels(), Arc::clone(&slab));
        self.pool.register(slab);
        Ok(data)
    }

    /// The pre-pool read path: fresh allocations, a `File::open` per call
    /// and a scalar byte cursor. Kept as the before/after baseline for the
    /// `pfs_reading` benchmarks; results are bit-identical to
    /// [`FileStore::read_region`] and update [`FileStore::stats`] the same
    /// way.
    pub fn read_region_fresh(
        &self,
        k: usize,
        region: &RegionRect,
    ) -> Result<RegionData, ReadError> {
        use bytes::Buf;
        let total = self.layout.region_bytes(region) as usize;
        let mut f =
            File::open(self.member_path(k)).map_err(|e| self.read_error(k, total as u64, e))?;
        let mut raw = vec![0u8; total];
        let mut cursor = 0usize;
        let mut seeks = 0u64;
        let mut io_err: Option<std::io::Error> = None;
        self.layout.for_each_segment(region, |seg| {
            if io_err.is_some() {
                return;
            }
            let res = f
                .seek(SeekFrom::Start(seg.offset))
                .and_then(|_| f.read_exact(&mut raw[cursor..cursor + seg.len as usize]));
            match res {
                Ok(()) => {
                    cursor += seg.len as usize;
                    seeks += 1;
                }
                Err(e) => io_err = Some(e),
            }
        });
        if let Some(e) = io_err {
            return Err(self.read_error(k, total as u64, e));
        }
        {
            let mut st = self.stats.lock();
            st.seeks += seeks;
            st.bytes_read += total as u64;
        }
        let mut values = Vec::with_capacity(total / 8);
        let mut slice = &raw[..];
        while slice.remaining() >= 8 {
            values.push(slice.get_f64_le());
        }
        Ok(RegionData::from_vec(*region, self.levels(), values))
    }

    /// Read an entire member file.
    pub fn read_full(&self, k: usize) -> Result<RegionData, ReadError> {
        self.read_region(k, &RegionRect::full(self.layout.mesh()))
    }

    /// Write one region of member `k` in place (the file must already
    /// exist), issuing one seek + write per contiguous segment — the
    /// write-side mirror of [`FileStore::read_region`], used to write
    /// analysis results back bar-by-bar. Accepts views: the data is
    /// serialized row-by-row through the pooled conversion buffer.
    pub fn write_region(&self, k: usize, data: &RegionData) -> std::io::Result<()> {
        assert_eq!(data.levels(), self.levels(), "level count mismatch");
        let mut buf = self.pool.take_bytes(0);
        for r in 0..data.region().height() {
            enkf_linalg::kernel::convert::extend_f64_le(data.row(r), &mut buf);
        }
        let result = self.flush_region_bytes(k, &data.region(), &buf);
        self.pool.put_bytes(buf);
        result
    }

    /// [`FileStore::write_region`] from a contiguous local-row-major value
    /// slice (`region.npoints() * levels` values) — lets callers reuse one
    /// staging vector across many writes instead of building a
    /// [`RegionData`] per call.
    pub fn write_region_values(
        &self,
        k: usize,
        region: &RegionRect,
        values: &[f64],
    ) -> std::io::Result<()> {
        assert_eq!(
            values.len(),
            region.npoints() * self.levels(),
            "value count mismatch"
        );
        let mut buf = self.pool.take_bytes(0);
        enkf_linalg::kernel::convert::extend_f64_le(values, &mut buf);
        let result = self.flush_region_bytes(k, region, &buf);
        self.pool.put_bytes(buf);
        result
    }

    /// Write an already-serialized region byte stream segment-by-segment,
    /// with the same seek/byte accounting as the read side.
    fn flush_region_bytes(&self, k: usize, region: &RegionRect, buf: &[u8]) -> std::io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .write(true)
            .open(self.member_path(k))?;
        let mut cursor = 0usize;
        let mut seeks = 0u64;
        let mut io_err: Option<std::io::Error> = None;
        self.layout.for_each_segment(region, |seg| {
            if io_err.is_some() {
                return;
            }
            let res = f
                .seek(SeekFrom::Start(seg.offset))
                .and_then(|_| f.write_all(&buf[cursor..cursor + seg.len as usize]));
            match res {
                Ok(()) => {
                    cursor += seg.len as usize;
                    seeks += 1;
                }
                Err(e) => io_err = Some(e),
            }
        });
        if let Some(e) = io_err {
            return Err(e);
        }
        let mut st = self.stats.lock();
        st.seeks += seeks;
        st.bytes_written += cursor as u64;
        Ok(())
    }

    /// Create member `k` as an all-zero file (a preallocation target for
    /// region writes). Implemented with `File::set_len` — no zero-filled
    /// buffer is materialized — while the byte accounting stays exactly
    /// what the old write-a-buffer-of-zeros implementation charged. Like
    /// [`FileStore::write_member`], the file is staged at a temp path and
    /// renamed into place, so a crash mid-create never leaves a
    /// short member file behind.
    pub fn create_member(&self, k: usize) -> std::io::Result<()> {
        let size = self.layout.file_size();
        let tmp = self.member_tmp_path(k);
        let f = File::create(&tmp)?;
        f.set_len(size)?;
        drop(f);
        std::fs::rename(&tmp, self.member_path(k))?;
        self.stats.lock().bytes_written += size;
        self.handles.lock().invalidate(k);
        self.note_member(k);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScratchDir;
    use enkf_grid::Mesh;

    fn store_with_member() -> (ScratchDir, FileStore, Vec<f64>) {
        let scratch = ScratchDir::new("store").unwrap();
        let mesh = Mesh::new(8, 4);
        let layout = FileLayout::new(mesh, 16); // 2 levels
        let store = FileStore::open(scratch.path(), layout).unwrap();
        let values: Vec<f64> = (0..mesh.n() * 2).map(|i| i as f64 * 0.5 - 3.0).collect();
        store.write_member(0, &values).unwrap();
        (scratch, store, values)
    }

    #[test]
    fn roundtrip_full_member() {
        let (_s, store, values) = store_with_member();
        let data = store.read_full(0).unwrap();
        assert_eq!(data.to_vec(), values);
        assert_eq!(data.levels(), 2);
        assert_eq!(data.as_contiguous().unwrap(), &values[..]);
    }

    #[test]
    fn interrupted_write_leaves_the_old_member_intact() {
        let (_s, store, values) = store_with_member();
        // Simulate a crash mid-replacement: a partial replacement sits at
        // the staging path, the rename never happened.
        std::fs::write(store.member_tmp_path(0), [0u8; 24]).unwrap();
        let data = store.read_full(0).unwrap();
        assert_eq!(data.to_vec(), values, "reader sees the old contents");
        // The leftover staging file is invisible to the member scan.
        let reopened = FileStore::open(store.root.clone(), store.layout()).unwrap();
        assert_eq!(reopened.num_members(), 1);
    }

    #[test]
    fn atomic_write_replaces_despite_cached_handle() {
        let (_s, store, values) = store_with_member();
        let _warm = store.read_full(0).unwrap(); // populate the handle cache
        let newvals: Vec<f64> = values.iter().map(|v| v + 1.0).collect();
        store.write_member(0, &newvals).unwrap();
        let data = store.read_full(0).unwrap();
        assert_eq!(data.to_vec(), newvals, "swap invalidates the cached handle");
    }

    #[test]
    fn durable_write_matches_plain_write() {
        let (_s, store, values) = store_with_member();
        let before = store.stats().bytes_written;
        store.write_member_durable(1, &values).unwrap();
        assert_eq!(
            store.stats().bytes_written - before,
            (values.len() * 8) as u64,
            "durable writes charge the same bytes"
        );
        assert_eq!(store.read_full(1).unwrap().to_vec(), values);
        assert_eq!(store.num_members(), 2);
        assert!(
            !store.member_tmp_path(1).exists(),
            "staging file renamed away"
        );
    }

    #[test]
    fn region_read_matches_mesh_indexing() {
        let (_s, store, values) = store_with_member();
        let region = RegionRect::new(2, 5, 1, 3);
        let data = store.read_region(0, &region).unwrap();
        assert_eq!(data.len(), region.npoints() * 2);
        for (local, p) in region.iter_points().enumerate() {
            let flat = store.layout().mesh().index(p);
            for level in 0..2 {
                assert_eq!(data.value(local, level), values[flat * 2 + level]);
            }
        }
    }

    #[test]
    fn fresh_read_is_bit_identical_with_same_stats() {
        let (_s, store, _) = store_with_member();
        let region = RegionRect::new(1, 6, 0, 3);
        store.reset_stats();
        let pooled = store.read_region(0, &region).unwrap();
        let pooled_stats = store.stats();
        store.reset_stats();
        let fresh = store.read_region_fresh(0, &region).unwrap();
        assert_eq!(pooled, fresh);
        assert_eq!(pooled.to_vec(), fresh.to_vec());
        assert_eq!(pooled_stats, store.stats(), "accounting must not drift");
    }

    #[test]
    fn op_cost_predicts_actual_stats() {
        let (_s, store, _) = store_with_member();
        let region = RegionRect::new(2, 5, 1, 3);
        let (seeks, bytes) = store.op_cost(&region);
        store.reset_stats();
        store.read_region(0, &region).unwrap();
        let st = store.stats();
        assert_eq!(st.seeks, seeks, "trace labeling must match real accounting");
        assert_eq!(st.bytes_read, bytes);
    }

    #[test]
    fn seek_accounting_matches_layout() {
        let (_s, store, _) = store_with_member();
        store.reset_stats();
        let bar = RegionRect::new(0, 8, 1, 3); // full width: 1 seek
        store.read_region(0, &bar).unwrap();
        assert_eq!(store.stats().seeks, 1);
        store.reset_stats();
        let block = RegionRect::new(2, 5, 0, 4); // 4 rows: 4 seeks
        store.read_region(0, &block).unwrap();
        let st = store.stats();
        assert_eq!(st.seeks, 4);
        assert_eq!(st.bytes_read, (3 * 4 * 16) as u64);
    }

    #[test]
    fn extract_sub_block() {
        let (_s, store, _) = store_with_member();
        let bar = store.read_region(0, &RegionRect::new(0, 8, 0, 4)).unwrap();
        let inner = RegionRect::new(3, 6, 1, 3);
        let block = bar.extract(&inner);
        let direct = store.read_region(0, &inner).unwrap();
        assert_eq!(block, direct);
        assert!(block.shares_backing(&bar), "extract must not copy");
        assert!(!block.shares_backing(&direct));
        assert_eq!(block.extract_owned(&inner), direct, "deep copy agrees");
    }

    #[test]
    fn nested_views_compose() {
        let (_s, store, _) = store_with_member();
        let bar = store.read_region(0, &RegionRect::new(0, 8, 0, 4)).unwrap();
        let mid = bar.extract(&RegionRect::new(1, 7, 1, 4));
        let inner = RegionRect::new(2, 5, 2, 4);
        let twice = mid.extract(&inner);
        let direct = store.read_region(0, &inner).unwrap();
        assert_eq!(twice, direct);
        assert!(twice.shares_backing(&bar));
    }

    #[test]
    fn empty_extract_is_well_formed() {
        let (_s, store, _) = store_with_member();
        let bar = store.read_region(0, &RegionRect::new(0, 8, 0, 4)).unwrap();
        let empty = bar.extract(&RegionRect::new(3, 3, 0, 2));
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
        assert_eq!(empty.to_vec(), Vec::<f64>::new());
    }

    #[test]
    fn surface_iterates_level_zero() {
        let (_s, store, values) = store_with_member();
        let region = RegionRect::new(2, 6, 1, 4);
        let data = store.read_region(0, &region).unwrap();
        let surf: Vec<f64> = data.surface().collect();
        let expect: Vec<f64> = region
            .iter_points()
            .map(|p| values[store.layout().mesh().index(p) * 2])
            .collect();
        assert_eq!(surf, expect);
    }

    #[test]
    fn pool_recycles_slab_after_views_drop() {
        let (_s, store, _) = store_with_member();
        let bar = RegionRect::new(0, 8, 0, 4);
        let first = store.read_region(0, &bar).unwrap();
        let first_ptr = Arc::as_ptr(&first.values);
        let held = store.read_region(0, &bar).unwrap();
        assert_ne!(
            Arc::as_ptr(&held.values),
            first_ptr,
            "live slab must not be reused"
        );
        drop(first);
        drop(held);
        let next = store.read_region(0, &bar).unwrap();
        let reused = store
            .pool()
            .free_slabs()
            .checked_add(1)
            .expect("pool registered");
        assert!(reused >= 1);
        let next_ptr = Arc::as_ptr(&next.values);
        assert!(
            next_ptr == first_ptr || store.pool().free_slabs() >= 1,
            "a dropped slab is available for reuse"
        );
    }

    #[test]
    fn num_members_counts_contiguous_files() {
        let (_s, store, values) = store_with_member();
        assert_eq!(store.num_members(), 1);
        store.write_member(1, &values).unwrap();
        store.write_member(2, &values).unwrap();
        assert_eq!(store.num_members(), 3);
        // Out-of-order writes leave a gap: the count stays at the frontier
        // until the gap is filled.
        store.write_member(5, &values).unwrap();
        assert_eq!(store.num_members(), 3);
        store.write_member(3, &values).unwrap();
        assert_eq!(store.num_members(), 4);
        store.write_member(4, &values).unwrap();
        assert_eq!(store.num_members(), 6, "frontier absorbs the gap files");
    }

    #[test]
    fn reopen_rescans_member_count() {
        let (scratch, store, values) = store_with_member();
        store.write_member(1, &values).unwrap();
        let reopened = FileStore::open(scratch.path(), store.layout()).unwrap();
        assert_eq!(reopened.num_members(), 2);
    }

    #[test]
    fn missing_member_errors() {
        let (_s, store, _) = store_with_member();
        assert!(store.read_full(7).is_err());
    }

    #[test]
    fn read_error_carries_context() {
        let (_s, store, _) = store_with_member();
        let err = store.read_full(7).unwrap_err();
        assert_eq!(err.member, 7);
        assert_eq!(err.path, store.member_path(7));
        assert_eq!(err.expected, (8 * 4 * 16) as u64);
        assert_eq!(err.actual, 0, "missing file has zero bytes present");
        assert!(!err.detail.is_empty());
        // The error converts into io::Error for legacy `?` call sites.
        let io: std::io::Error = err.into();
        assert!(io.to_string().contains("member 7"));
    }

    #[test]
    fn truncated_member_reports_actual_bytes() {
        let (_s, store, _) = store_with_member();
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(store.member_path(0))
            .unwrap();
        f.set_len(40).unwrap();
        let err = store.read_full(0).unwrap_err();
        assert_eq!(err.member, 0);
        assert_eq!(err.expected, (8 * 4 * 16) as u64);
        assert_eq!(err.actual, 40);
    }

    #[test]
    fn truncation_detected_through_warm_handle_cache() {
        let (_s, store, _) = store_with_member();
        store.read_full(0).unwrap(); // caches the handle
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(store.member_path(0))
            .unwrap();
        f.set_len(40).unwrap();
        let err = store.read_full(0).unwrap_err();
        assert_eq!(err.actual, 40, "cached handle sees the truncated inode");
        // A failed read does not poison subsequent reads.
        f.set_len(8 * 4 * 16).unwrap();
        assert!(store.read_full(0).is_ok());
    }

    #[test]
    #[should_panic(expected = "member value count mismatch")]
    fn write_wrong_length_panics() {
        let (_s, store, _) = store_with_member();
        store.write_member(1, &[1.0, 2.0]).unwrap();
    }

    #[test]
    fn write_region_roundtrips() {
        let (_s, store, original) = store_with_member();
        let region = RegionRect::new(2, 6, 1, 3);
        let read = store.read_region(0, &region).unwrap();
        let values: Vec<f64> = read.to_vec().iter().map(|v| v + 100.0).collect();
        let data = RegionData::from_vec(region, 2, values);
        store.write_region(0, &data).unwrap();
        // The region reads back modified; everything else is untouched.
        let back = store.read_full(0).unwrap();
        let mesh = store.layout().mesh();
        for p in mesh.iter_points() {
            let flat = mesh.index(p);
            for level in 0..2 {
                let expect = if region.contains(p) {
                    original[flat * 2 + level] + 100.0
                } else {
                    original[flat * 2 + level]
                };
                assert_eq!(back.value(flat, level), expect, "point {p:?} level {level}");
            }
        }
    }

    #[test]
    fn write_region_accepts_views() {
        let (_s, store, values) = store_with_member();
        store.write_member(1, &vec![0.0; values.len()]).unwrap();
        let bar = store.read_region(0, &RegionRect::new(0, 8, 0, 4)).unwrap();
        let inner = RegionRect::new(2, 6, 1, 3);
        let view = bar.extract(&inner);
        store.write_region(1, &view).unwrap();
        let back = store.read_region(1, &inner).unwrap();
        assert_eq!(back, view, "view writes land bit-identically");
    }

    #[test]
    fn create_member_preallocates_zeros() {
        let (_s, store, _) = store_with_member();
        store.reset_stats();
        store.create_member(3).unwrap();
        assert_eq!(
            store.stats().bytes_written,
            store.layout().file_size(),
            "set_len create must charge the same bytes as a zero write"
        );
        let data = store.read_full(3).unwrap();
        assert!(data.to_vec().iter().all(|&v| v == 0.0));
        // Region writes into the fresh file work.
        let region = RegionRect::new(0, 8, 0, 1);
        let patch = RegionData::from_vec(region, 2, vec![7.0; region.npoints() * 2]);
        store.write_region(3, &patch).unwrap();
        assert_eq!(store.read_region(3, &region).unwrap(), patch);
    }

    #[test]
    fn write_region_counts_seeks() {
        let (_s, store, _) = store_with_member();
        store.reset_stats();
        let region = RegionRect::new(1, 4, 0, 3); // 3 rows, partial width
        let data = RegionData::from_vec(region, 2, vec![1.0; region.npoints() * 2]);
        store.write_region(0, &data).unwrap();
        let st = store.stats();
        assert_eq!(st.seeks, 3);
        assert_eq!(st.bytes_written, (9 * 16) as u64);
    }

    #[test]
    fn write_region_values_matches_write_region() {
        let (_s, store, values) = store_with_member();
        store.write_member(1, &values).unwrap();
        store.write_member(2, &values).unwrap();
        let region = RegionRect::new(1, 5, 0, 3);
        let patch: Vec<f64> = (0..region.npoints() * 2).map(|i| i as f64 * 0.25).collect();
        store
            .write_region(1, &RegionData::from_vec(region, 2, patch.clone()))
            .unwrap();
        store.write_region_values(2, &region, &patch).unwrap();
        let a = std::fs::read(store.member_path(1)).unwrap();
        let b = std::fs::read(store.member_path(2)).unwrap();
        assert_eq!(a, b, "both write paths produce identical bytes");
    }
}
