//! The real file backend: ensemble members as files on local disk.
//!
//! Each background ensemble member `X^{b[k]}` is one file (`member_XXXX.bin`)
//! holding the mesh row-priority with `h = 8·levels` bytes per grid point
//! (little-endian `f64` per vertical level). Region reads are issued
//! segment-by-segment exactly as [`enkf_grid::FileLayout`] predicts, so the
//! seek/byte accounting of the real backend matches what the DES model
//! charges for.

use bytes::{Buf, BufMut, BytesMut};
use enkf_fault::ReadError;
use enkf_grid::{FileLayout, RegionRect};
use parking_lot::Mutex;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Cumulative I/O accounting for a store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Number of disk addressing operations (seeks) issued.
    pub seeks: u64,
    /// Bytes read from disk.
    pub bytes_read: u64,
    /// Bytes written to disk.
    pub bytes_written: u64,
}

/// The values of one region of one ensemble member, in the region's
/// row-priority local order, `levels` values per point.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionData {
    /// The region the values cover.
    pub region: RegionRect,
    /// Values per grid point (vertical levels).
    pub levels: usize,
    /// `region.npoints() * levels` values in local row-priority order.
    pub values: Vec<f64>,
}

impl RegionData {
    /// Value at a region-local point index and vertical level.
    #[inline]
    pub fn value(&self, local: usize, level: usize) -> f64 {
        debug_assert!(level < self.levels);
        self.values[local * self.levels + level]
    }

    /// Extract the sub-region `inner` (must be contained in `self.region`)
    /// as a new `RegionData` — how a bar is split into the per-sub-domain
    /// blocks that I/O processors send onward.
    pub fn extract(&self, inner: &RegionRect) -> RegionData {
        assert!(
            self.region.contains_rect(inner),
            "extract region escapes data"
        );
        let mut values = Vec::with_capacity(inner.npoints() * self.levels);
        for p in inner.iter_points() {
            let src = self.region.local_index(p) * self.levels;
            values.extend_from_slice(&self.values[src..src + self.levels]);
        }
        RegionData {
            region: *inner,
            levels: self.levels,
            values,
        }
    }
}

/// A directory of ensemble-member files with a fixed layout.
///
/// ```
/// use enkf_grid::{FileLayout, Mesh, RegionRect};
/// use enkf_pfs::{FileStore, ScratchDir};
///
/// let scratch = ScratchDir::new("doc").unwrap();
/// let mesh = Mesh::new(8, 4);
/// let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 8)).unwrap();
/// store.write_member(0, &vec![1.5; mesh.n()]).unwrap();
/// // A full-width bar reads with a single disk addressing operation.
/// let bar = RegionRect::new(0, 8, 1, 3);
/// let data = store.read_region(0, &bar).unwrap();
/// assert_eq!(data.values.len(), bar.npoints());
/// assert_eq!(store.stats().seeks, 1);
/// ```
#[derive(Debug)]
pub struct FileStore {
    root: PathBuf,
    layout: FileLayout,
    stats: Mutex<IoStats>,
}

impl FileStore {
    /// Open (creating the directory if needed) a store rooted at `root`.
    ///
    /// `layout.bytes_per_point()` must be a multiple of 8 (whole `f64`
    /// levels per point).
    pub fn open(root: impl AsRef<Path>, layout: FileLayout) -> std::io::Result<Self> {
        assert!(
            layout.bytes_per_point().is_multiple_of(8) && layout.bytes_per_point() > 0,
            "bytes per point must be a positive multiple of 8"
        );
        std::fs::create_dir_all(root.as_ref())?;
        Ok(FileStore {
            root: root.as_ref().to_path_buf(),
            layout,
            stats: Mutex::new(IoStats::default()),
        })
    }

    /// The layout shared by every member file.
    pub fn layout(&self) -> FileLayout {
        self.layout
    }

    /// Vertical levels per point (`h / 8`).
    pub fn levels(&self) -> usize {
        (self.layout.bytes_per_point() / 8) as usize
    }

    /// Path of member `k`'s file.
    pub fn member_path(&self, k: usize) -> PathBuf {
        self.root.join(format!("member_{k:05}.bin"))
    }

    /// Number of member files present (contiguous from 0).
    pub fn num_members(&self) -> usize {
        (0..).take_while(|&k| self.member_path(k).is_file()).count()
    }

    /// `(seeks, bytes)` a region access costs under this store's layout —
    /// exactly what [`FileStore::read_region`]/[`FileStore::write_region`]
    /// will add to [`FileStore::stats`], and exactly what the DES model
    /// charges for the same region. Used to label execution-trace spans so
    /// the real and modeled paths account operations identically.
    pub fn op_cost(&self, region: &RegionRect) -> (u64, u64) {
        (
            self.layout.seek_count(region) as u64,
            self.layout.region_bytes(region),
        )
    }

    /// Cumulative I/O statistics.
    pub fn stats(&self) -> IoStats {
        *self.stats.lock()
    }

    /// Reset the I/O statistics (e.g. between measured phases).
    pub fn reset_stats(&self) {
        *self.stats.lock() = IoStats::default();
    }

    /// Write member `k` from mesh-ordered values (`n · levels` values,
    /// `levels` consecutive values per point).
    pub fn write_member(&self, k: usize, values: &[f64]) -> std::io::Result<()> {
        let expect = self.layout.mesh().n() * self.levels();
        assert_eq!(values.len(), expect, "member value count mismatch");
        let mut buf = BytesMut::with_capacity(values.len() * 8);
        for &v in values {
            buf.put_f64_le(v);
        }
        let mut f = File::create(self.member_path(k))?;
        f.write_all(&buf)?;
        self.stats.lock().bytes_written += buf.len() as u64;
        Ok(())
    }

    /// Read one region of member `k`, issuing one seek + read per contiguous
    /// segment (full-width regions are a single segment).
    ///
    /// Failures return a structured [`ReadError`] carrying the path, the
    /// member, the bytes the region required and the bytes actually present
    /// — the context the executors' failure paths propagate instead of a
    /// bare `io::Error` string.
    pub fn read_region(&self, k: usize, region: &RegionRect) -> Result<RegionData, ReadError> {
        let segments = self.layout.segments(region);
        let path = self.member_path(k);
        let total: usize = segments.iter().map(|s| s.len as usize).sum();
        let ctx = |detail: std::io::Error| ReadError {
            path: path.clone(),
            member: k,
            expected: total as u64,
            actual: std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
            detail: detail.to_string(),
        };
        let mut f = File::open(&path).map_err(ctx)?;
        let levels = self.levels();
        let mut raw = vec![0u8; total];
        let mut cursor = 0usize;
        let mut seeks = 0u64;
        for seg in &segments {
            f.seek(SeekFrom::Start(seg.offset)).map_err(ctx)?;
            f.read_exact(&mut raw[cursor..cursor + seg.len as usize])
                .map_err(ctx)?;
            cursor += seg.len as usize;
            seeks += 1;
        }
        {
            let mut st = self.stats.lock();
            st.seeks += seeks;
            st.bytes_read += total as u64;
        }
        let mut values = Vec::with_capacity(total / 8);
        let mut slice = &raw[..];
        while slice.remaining() >= 8 {
            values.push(slice.get_f64_le());
        }
        Ok(RegionData {
            region: *region,
            levels,
            values,
        })
    }

    /// Read an entire member file.
    pub fn read_full(&self, k: usize) -> Result<RegionData, ReadError> {
        self.read_region(k, &RegionRect::full(self.layout.mesh()))
    }

    /// Write one region of member `k` in place (the file must already
    /// exist), issuing one seek + write per contiguous segment — the
    /// write-side mirror of [`FileStore::read_region`], used to write
    /// analysis results back bar-by-bar.
    pub fn write_region(&self, k: usize, data: &RegionData) -> std::io::Result<()> {
        assert_eq!(data.levels, self.levels(), "level count mismatch");
        assert_eq!(
            data.values.len(),
            data.region.npoints() * data.levels,
            "value count mismatch"
        );
        let segments = self.layout.segments(&data.region);
        let mut f = std::fs::OpenOptions::new()
            .write(true)
            .open(self.member_path(k))?;
        let mut buf = BytesMut::with_capacity(data.values.len() * 8);
        for &v in &data.values {
            buf.put_f64_le(v);
        }
        let mut cursor = 0usize;
        let mut seeks = 0u64;
        for seg in &segments {
            f.seek(SeekFrom::Start(seg.offset))?;
            f.write_all(&buf[cursor..cursor + seg.len as usize])?;
            cursor += seg.len as usize;
            seeks += 1;
        }
        let mut st = self.stats.lock();
        st.seeks += seeks;
        st.bytes_written += cursor as u64;
        Ok(())
    }

    /// Create member `k` as an all-zero file (a preallocation target for
    /// region writes).
    pub fn create_member(&self, k: usize) -> std::io::Result<()> {
        let zeros = vec![0.0f64; self.layout.mesh().n() * self.levels()];
        self.write_member(k, &zeros)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScratchDir;
    use enkf_grid::Mesh;

    fn store_with_member() -> (ScratchDir, FileStore, Vec<f64>) {
        let scratch = ScratchDir::new("store").unwrap();
        let mesh = Mesh::new(8, 4);
        let layout = FileLayout::new(mesh, 16); // 2 levels
        let store = FileStore::open(scratch.path(), layout).unwrap();
        let values: Vec<f64> = (0..mesh.n() * 2).map(|i| i as f64 * 0.5 - 3.0).collect();
        store.write_member(0, &values).unwrap();
        (scratch, store, values)
    }

    #[test]
    fn roundtrip_full_member() {
        let (_s, store, values) = store_with_member();
        let data = store.read_full(0).unwrap();
        assert_eq!(data.values, values);
        assert_eq!(data.levels, 2);
    }

    #[test]
    fn region_read_matches_mesh_indexing() {
        let (_s, store, values) = store_with_member();
        let region = RegionRect::new(2, 5, 1, 3);
        let data = store.read_region(0, &region).unwrap();
        assert_eq!(data.values.len(), region.npoints() * 2);
        for (local, p) in region.iter_points().enumerate() {
            let flat = store.layout().mesh().index(p);
            for level in 0..2 {
                assert_eq!(data.value(local, level), values[flat * 2 + level]);
            }
        }
    }

    #[test]
    fn op_cost_predicts_actual_stats() {
        let (_s, store, _) = store_with_member();
        let region = RegionRect::new(2, 5, 1, 3);
        let (seeks, bytes) = store.op_cost(&region);
        store.reset_stats();
        store.read_region(0, &region).unwrap();
        let st = store.stats();
        assert_eq!(st.seeks, seeks, "trace labeling must match real accounting");
        assert_eq!(st.bytes_read, bytes);
    }

    #[test]
    fn seek_accounting_matches_layout() {
        let (_s, store, _) = store_with_member();
        store.reset_stats();
        let bar = RegionRect::new(0, 8, 1, 3); // full width: 1 seek
        store.read_region(0, &bar).unwrap();
        assert_eq!(store.stats().seeks, 1);
        store.reset_stats();
        let block = RegionRect::new(2, 5, 0, 4); // 4 rows: 4 seeks
        store.read_region(0, &block).unwrap();
        let st = store.stats();
        assert_eq!(st.seeks, 4);
        assert_eq!(st.bytes_read, (3 * 4 * 16) as u64);
    }

    #[test]
    fn extract_sub_block() {
        let (_s, store, _) = store_with_member();
        let bar = store.read_region(0, &RegionRect::new(0, 8, 0, 4)).unwrap();
        let inner = RegionRect::new(3, 6, 1, 3);
        let block = bar.extract(&inner);
        let direct = store.read_region(0, &inner).unwrap();
        assert_eq!(block, direct);
    }

    #[test]
    fn num_members_counts_contiguous_files() {
        let (_s, store, values) = store_with_member();
        assert_eq!(store.num_members(), 1);
        store.write_member(1, &values).unwrap();
        store.write_member(2, &values).unwrap();
        assert_eq!(store.num_members(), 3);
    }

    #[test]
    fn missing_member_errors() {
        let (_s, store, _) = store_with_member();
        assert!(store.read_full(7).is_err());
    }

    #[test]
    fn read_error_carries_context() {
        let (_s, store, _) = store_with_member();
        let err = store.read_full(7).unwrap_err();
        assert_eq!(err.member, 7);
        assert_eq!(err.path, store.member_path(7));
        assert_eq!(err.expected, (8 * 4 * 16) as u64);
        assert_eq!(err.actual, 0, "missing file has zero bytes present");
        assert!(!err.detail.is_empty());
        // The error converts into io::Error for legacy `?` call sites.
        let io: std::io::Error = err.into();
        assert!(io.to_string().contains("member 7"));
    }

    #[test]
    fn truncated_member_reports_actual_bytes() {
        let (_s, store, _) = store_with_member();
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(store.member_path(0))
            .unwrap();
        f.set_len(40).unwrap();
        let err = store.read_full(0).unwrap_err();
        assert_eq!(err.member, 0);
        assert_eq!(err.expected, (8 * 4 * 16) as u64);
        assert_eq!(err.actual, 40);
    }

    #[test]
    #[should_panic(expected = "member value count mismatch")]
    fn write_wrong_length_panics() {
        let (_s, store, _) = store_with_member();
        store.write_member(1, &[1.0, 2.0]).unwrap();
    }

    #[test]
    fn write_region_roundtrips() {
        let (_s, store, original) = store_with_member();
        let region = RegionRect::new(2, 6, 1, 3);
        let mut data = store.read_region(0, &region).unwrap();
        for v in &mut data.values {
            *v += 100.0;
        }
        store.write_region(0, &data).unwrap();
        // The region reads back modified; everything else is untouched.
        let back = store.read_full(0).unwrap();
        let mesh = store.layout().mesh();
        for p in mesh.iter_points() {
            let flat = mesh.index(p);
            for level in 0..2 {
                let expect = if region.contains(p) {
                    original[flat * 2 + level] + 100.0
                } else {
                    original[flat * 2 + level]
                };
                assert_eq!(back.value(flat, level), expect, "point {p:?} level {level}");
            }
        }
    }

    #[test]
    fn create_member_preallocates_zeros() {
        let (_s, store, _) = store_with_member();
        store.create_member(3).unwrap();
        let data = store.read_full(3).unwrap();
        assert!(data.values.iter().all(|&v| v == 0.0));
        // Region writes into the fresh file work.
        let region = RegionRect::new(0, 8, 0, 1);
        let patch = RegionData {
            region,
            levels: 2,
            values: vec![7.0; region.npoints() * 2],
        };
        store.write_region(3, &patch).unwrap();
        assert_eq!(store.read_region(3, &region).unwrap(), patch);
    }

    #[test]
    fn write_region_counts_seeks() {
        let (_s, store, _) = store_with_member();
        store.reset_stats();
        let region = RegionRect::new(1, 4, 0, 3); // 3 rows, partial width
        let data = RegionData {
            region,
            levels: 2,
            values: vec![1.0; region.npoints() * 2],
        };
        store.write_region(0, &data).unwrap();
        let st = store.stats();
        assert_eq!(st.seeks, 3);
        assert_eq!(st.bytes_written, (9 * 16) as u64);
    }
}
