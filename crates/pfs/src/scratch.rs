//! Self-cleaning scratch directories for tests, examples and benchmarks.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A uniquely named directory under the system temp dir, removed on drop.
///
/// Used wherever the real file backend needs a place to write ensemble
/// member files without polluting the workspace.
#[derive(Debug)]
pub struct ScratchDir {
    path: PathBuf,
}

impl ScratchDir {
    /// Create a fresh scratch directory with the given name prefix.
    pub fn new(prefix: &str) -> std::io::Result<Self> {
        let unique = format!(
            "{prefix}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        let path = std::env::temp_dir().join("s-enkf").join(unique);
        std::fs::create_dir_all(&path)?;
        Ok(ScratchDir { path })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        // Best-effort cleanup; leaking a temp dir is not worth a panic.
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_cleans_up() {
        let kept_path;
        {
            let s = ScratchDir::new("unit").unwrap();
            kept_path = s.path().to_path_buf();
            assert!(kept_path.is_dir());
            std::fs::write(kept_path.join("x.bin"), b"hello").unwrap();
        }
        assert!(!kept_path.exists(), "dropped scratch dir must be removed");
    }

    #[test]
    fn two_scratch_dirs_are_distinct() {
        let a = ScratchDir::new("unit").unwrap();
        let b = ScratchDir::new("unit").unwrap();
        assert_ne!(a.path(), b.path());
    }
}
