//! Parallel file system substrate.
//!
//! The paper's evaluation ran against H2FS/Lustre: ensemble members are
//! independent files distributed over object storage targets (OSTs); a
//! region read costs one *disk addressing operation* (seek) per
//! non-contiguous segment plus a per-byte transfer time θ; each OST serves a
//! bounded number of concurrent streams, so excess readers queue.
//!
//! This crate provides both halves of the substitution described in
//! DESIGN.md:
//!
//! * [`store`] — a **real backend**: ensemble members as actual files in a
//!   directory, with region reads that issue exactly the seeks the layout
//!   predicts and an accounting of seeks/bytes. Used by the real (threaded)
//!   executor and by correctness tests.
//! * [`model`] — a **modeled backend**: OSTs as finite-capacity DES
//!   resources plus the seek/transfer service-time function. Used by the
//!   12,000-core experiments.
//! * [`scratch`] — self-cleaning scratch directories for tests and examples.

pub mod model;
pub mod readahead;
pub mod resilient;
pub mod scratch;
pub mod store;

pub use model::{ModeledPfs, PfsParams};
pub use readahead::{read_stages_ahead, read_stages_ahead_adaptive, ReadAheadError, StageRead};
pub use resilient::{
    read_full_adaptive, read_full_resilient, read_region_adaptive, read_region_resilient,
};
pub use scratch::ScratchDir;
pub use store::{BufferPool, FileStore, IoStats, RegionData};
