//! The modeled backend: OSTs as DES resources plus the service-time model.
//!
//! Calibration targets the *shape* of the paper's results, not Tianhe-2's
//! absolute numbers (see EXPERIMENTS.md): per-stream disk bandwidth of a few
//! hundred MB/s, a few milliseconds per addressing operation, a handful of
//! OSTs each serving a few concurrent streams. With those constants the
//! block-reading seek count `O(n_y · n_sdx)` dominates at high processor
//! counts (Figures 1 and 5), and concurrent-group reading saturates once
//! the groups cover the OSTs (Figure 10).

use enkf_sim::{ResourceId, Simulation};

/// Parameters of the modeled parallel file system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PfsParams {
    /// Number of object storage targets files are distributed over.
    pub num_osts: usize,
    /// Concurrent streams one OST serves before readers queue.
    pub streams_per_ost: usize,
    /// Seconds per disk addressing operation (seek).
    pub seek_time: f64,
    /// Seconds per byte transferred on one stream (1 / per-stream bandwidth).
    pub byte_time: f64,
}

impl PfsParams {
    /// A Lustre/H2FS-like configuration used by the paper-scale experiments:
    /// 6 OSTs × 4 streams, 200 µs per addressing operation (RAID-backed
    /// OSTs), 300 MB/s per stream. Calibrated so the paper-scale shapes
    /// hold: block reading's `O(n_y·n_sdx)` seeks dominate P-EnKF beyond
    /// ~8,000 ranks while bar reading stays transfer-bound (EXPERIMENTS.md).
    pub fn tianhe2_like() -> Self {
        PfsParams {
            num_osts: 6,
            streams_per_ost: 4,
            seek_time: 2.0e-4,
            byte_time: 1.0 / 300.0e6,
        }
    }

    /// Service time of one read: `seeks · seek_time + bytes · byte_time`.
    pub fn read_service(&self, seeks: u64, bytes: u64) -> f64 {
        seeks as f64 * self.seek_time + bytes as f64 * self.byte_time
    }

    /// Aggregate file-system bandwidth when every OST is saturated, bytes/s.
    pub fn aggregate_bandwidth(&self) -> f64 {
        (self.num_osts * self.streams_per_ost) as f64 / self.byte_time
    }

    /// The substrate one fair-share slice of this file system presents: the
    /// same OSTs, seek cost and stream structure, but each stream delivers
    /// `share` of its bandwidth (`byte_time / share`). This is how the
    /// multi-tenant scheduler threads an OST-bandwidth allocation through
    /// the DES — a campaign granted 25% of the machine is *modeled* against
    /// quarter-speed streams, so its overlap structure and queueing are
    /// recomputed, not scaled after the fact. Seek time is unchanged:
    /// addressing operations serialize on the disk arm regardless of how
    /// the transfer bandwidth is partitioned.
    pub fn with_bandwidth_share(&self, share: f64) -> PfsParams {
        assert!(
            share > 0.0 && share <= 1.0 + 1e-12,
            "bandwidth share must be in (0, 1], got {share}"
        );
        PfsParams {
            byte_time: self.byte_time / share.min(1.0),
            ..*self
        }
    }
}

/// The OST resources of one modeled file system, registered in a simulation.
#[derive(Debug, Clone)]
pub struct ModeledPfs {
    params: PfsParams,
    osts: Vec<ResourceId>,
}

impl ModeledPfs {
    /// Register the OSTs in a simulation.
    pub fn register(sim: &mut Simulation, params: PfsParams) -> Self {
        assert!(params.num_osts > 0 && params.streams_per_ost > 0);
        let osts = (0..params.num_osts)
            .map(|_| sim.add_resource(params.streams_per_ost))
            .collect();
        ModeledPfs { params, osts }
    }

    /// The parameter set.
    pub fn params(&self) -> &PfsParams {
        &self.params
    }

    /// OST hosting ensemble-member file `k`: round-robin placement, the
    /// "two different files may be stored in either the same disk or two
    /// physical disks" distribution of §4.1.3.
    pub fn ost_of_file(&self, file: usize) -> ResourceId {
        self.osts[file % self.osts.len()]
    }

    /// All OST resource ids.
    pub fn osts(&self) -> &[ResourceId] {
        &self.osts
    }

    /// Service time of one read (delegates to the parameter set).
    pub fn read_service(&self, seeks: u64, bytes: u64) -> f64 {
        self.params.read_service(seeks, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enkf_sim::{Kind, Task};

    #[test]
    fn read_service_combines_seek_and_transfer() {
        let p = PfsParams {
            num_osts: 1,
            streams_per_ost: 1,
            seek_time: 0.01,
            byte_time: 1e-6,
        };
        assert!((p.read_service(3, 1000) - (0.03 + 0.001)).abs() < 1e-12);
        assert_eq!(p.read_service(0, 0), 0.0);
    }

    #[test]
    fn round_robin_placement() {
        let mut sim = Simulation::new();
        let pfs = ModeledPfs::register(
            &mut sim,
            PfsParams {
                num_osts: 3,
                ..PfsParams::tianhe2_like()
            },
        );
        assert_eq!(pfs.ost_of_file(0), pfs.ost_of_file(3));
        assert_ne!(pfs.ost_of_file(0), pfs.ost_of_file(1));
    }

    #[test]
    fn ost_contention_queues_excess_readers() {
        let mut sim = Simulation::new();
        let params = PfsParams {
            num_osts: 1,
            streams_per_ost: 2,
            seek_time: 0.0,
            byte_time: 1e-6,
        };
        let pfs = ModeledPfs::register(&mut sim, params);
        // 4 readers of 1 MB each on a 2-stream OST: 2 waves of 1 s.
        for _ in 0..4 {
            let a = sim.add_agent();
            let service = pfs.read_service(0, 1_000_000);
            sim.add_task(
                Task::new(a, Kind::Read, service).with_resources(vec![pfs.ost_of_file(0)]),
            )
            .unwrap();
        }
        let rep = sim.run().unwrap();
        assert!(
            (rep.makespan - 2.0).abs() < 1e-9,
            "makespan {}",
            rep.makespan
        );
    }

    #[test]
    fn different_osts_do_not_contend() {
        let mut sim = Simulation::new();
        let params = PfsParams {
            num_osts: 2,
            streams_per_ost: 1,
            seek_time: 0.0,
            byte_time: 1e-6,
        };
        let pfs = ModeledPfs::register(&mut sim, params);
        for file in 0..2 {
            let a = sim.add_agent();
            let service = pfs.read_service(0, 1_000_000);
            sim.add_task(
                Task::new(a, Kind::Read, service).with_resources(vec![pfs.ost_of_file(file)]),
            )
            .unwrap();
        }
        let rep = sim.run().unwrap();
        assert!((rep.makespan - 1.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_bandwidth() {
        let p = PfsParams::tianhe2_like();
        assert!((p.aggregate_bandwidth() - 24.0 * 300.0e6).abs() < 1.0);
    }

    #[test]
    fn bandwidth_share_scales_transfer_not_seeks() {
        let p = PfsParams::tianhe2_like();
        let half = p.with_bandwidth_share(0.5);
        assert!((half.aggregate_bandwidth() - p.aggregate_bandwidth() / 2.0).abs() < 1.0);
        assert_eq!(half.seek_time, p.seek_time);
        assert_eq!(half.num_osts, p.num_osts);
        // A full share is the identity.
        assert_eq!(p.with_bandwidth_share(1.0), p);
    }

    #[test]
    #[should_panic(expected = "bandwidth share")]
    fn zero_share_is_rejected() {
        PfsParams::tianhe2_like().with_bandwidth_share(0.0);
    }
}
