//! Asynchronous checkpoint writer: durability off the critical path.
//!
//! The synchronous supervisor pays the full checkpoint write (temp +
//! fsync + rename per member) on the critical path after every cycle.
//! This module moves that write to a background thread, FTI-style: the
//! supervisor hands over an O(1) [`CampaignCheckpoint`] snapshot
//! (`Arc`-backed, see `enkf_data::CycleState`) and immediately starts the
//! next cycle while the writer persists cycle k behind it.
//!
//! Semantics the campaign engine builds on:
//!
//! * **Durable frontier** — [`AsyncCheckpointer::durable_frontier`] is the
//!   highest cycle durably committed by this writer. It may lag the
//!   computed frontier by at most one cycle (the in-flight write); a kill
//!   at any instant loses at most that one cycle, and recovery restores
//!   the last *durable* cycle.
//! * **Backpressure** — at most one checkpoint is in flight.
//!   [`AsyncCheckpointer::save_async`] blocks while the previous write is
//!   still running, bounding both OST write contention (one writer
//!   stream) and memory (one outstanding snapshot).
//! * **Drain barrier** — [`AsyncCheckpointer::drain`] blocks until the
//!   queue is empty and surfaces any deferred write error; after an `Ok`
//!   drain the durable frontier equals the last cycle handed over. The
//!   supervisor drains at campaign end, before every restore, and on
//!   error paths, so recovery never races an in-flight write.
//! * **Traced** — member payload writes are recorded through a forked
//!   [`RankTracer`] on the supervisor's rank and handed back at drain, so
//!   pipelined and synchronous campaigns emit the identical span multiset
//!   (digests are time-free) and real-vs-modeled conformance still holds.

use crate::{CampaignCheckpoint, CheckpointStore};
use enkf_trace::{RankTracer, Span};
use std::io;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{Scope, ScopedJoinHandle};

#[derive(Default)]
struct WriterState {
    /// The checkpoint handed over but not yet picked up by the worker.
    pending: Option<CampaignCheckpoint>,
    /// Whether the worker is mid-write.
    writing: bool,
    /// Highest cycle durably committed by this writer (monotone).
    durable: Option<usize>,
    /// A failed write, surfaced at the next `save_async` or `drain`.
    error: Option<io::Error>,
    /// Ckpt spans recorded by the worker since the last drain.
    spans: Vec<Span>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<WriterState>,
    cv: Condvar,
}

/// A background checkpoint writer scoped to a [`std::thread::scope`]
/// block. Dropping it shuts the worker down after any in-flight or
/// pending write completes (best-effort durability on abrupt exits).
pub struct AsyncCheckpointer<'scope> {
    shared: Arc<Shared>,
    handle: Option<ScopedJoinHandle<'scope, ()>>,
}

impl<'scope> AsyncCheckpointer<'scope> {
    /// Spawn the writer thread on `scope`, persisting through `store`.
    /// `tracer` must be a fork of the supervisor's tracer (same rank and
    /// epoch) so the writer's Ckpt spans land on the supervisor timeline.
    pub fn spawn<'env>(
        scope: &'scope Scope<'scope, 'env>,
        store: &'env CheckpointStore,
        tracer: RankTracer,
    ) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(WriterState::default()),
            cv: Condvar::new(),
        });
        let worker = Arc::clone(&shared);
        let handle = scope.spawn(move || worker_loop(&worker, store, &tracer));
        AsyncCheckpointer {
            shared,
            handle: Some(handle),
        }
    }

    /// Hand a checkpoint to the background writer and return immediately
    /// — unless the previous write is still in flight, in which case this
    /// blocks until it completes (the backpressure bound: one in-flight
    /// checkpoint). A failure of a *previous* asynchronous write is
    /// surfaced here (the handed-over checkpoint is then not enqueued).
    pub fn save_async(&self, ckpt: CampaignCheckpoint) -> io::Result<()> {
        let mut st = self.shared.state.lock().unwrap();
        while st.pending.is_some() || st.writing {
            st = self.shared.cv.wait(st).unwrap();
        }
        if let Some(e) = st.error.take() {
            return Err(e);
        }
        st.pending = Some(ckpt);
        drop(st);
        self.shared.cv.notify_all();
        Ok(())
    }

    /// Drain barrier: block until nothing is queued or in flight, then
    /// return the Ckpt spans recorded since the last drain along with any
    /// deferred write error. After an `Ok` drain the durable frontier
    /// equals the last cycle handed to [`AsyncCheckpointer::save_async`].
    pub fn drain(&self) -> (Vec<Span>, io::Result<()>) {
        let mut st = self.shared.state.lock().unwrap();
        while st.pending.is_some() || st.writing {
            st = self.shared.cv.wait(st).unwrap();
        }
        let spans = std::mem::take(&mut st.spans);
        let res = match st.error.take() {
            Some(e) => Err(e),
            None => Ok(()),
        };
        (spans, res)
    }

    /// The highest cycle this writer has durably committed (`None` before
    /// the first asynchronous write completes). Monotone non-decreasing;
    /// lags the computed frontier by at most the one in-flight cycle.
    pub fn durable_frontier(&self) -> Option<usize> {
        self.shared.state.lock().unwrap().durable
    }
}

impl Drop for AsyncCheckpointer<'_> {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.cv.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, store: &CheckpointStore, tracer: &RankTracer) {
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some(c) = st.pending.take() {
                    st.writing = true;
                    break c;
                }
                if st.shutdown {
                    return;
                }
                st = shared.cv.wait(st).unwrap();
            }
        };
        let cycle = job.cycle;
        let mut t = tracer.fork();
        let res = store.save(&job, Some(&mut t));
        let mut st = shared.state.lock().unwrap();
        st.spans.extend(t.into_spans());
        st.writing = false;
        match res {
            Ok(()) => st.durable = Some(st.durable.map_or(cycle, |d| d.max(cycle))),
            Err(e) => st.error = Some(e),
        }
        drop(st);
        shared.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enkf_core::Ensemble;
    use enkf_grid::Mesh;
    use enkf_linalg::Matrix;
    use enkf_pfs::ScratchDir;
    use std::time::Instant;

    fn sample(cycle: usize) -> CampaignCheckpoint {
        let mesh = Mesh::new(6, 4);
        let n = mesh.n();
        let mk = |salt: usize| {
            Arc::new(Ensemble::new(
                mesh,
                Matrix::from_fn(n, 3, |i, k| ((i * 13 + k * 7 + salt) as f64).sin()),
            ))
        };
        CampaignCheckpoint {
            cycle,
            seed: 9,
            members0: 3,
            rng_cursor: 100 + cycle as u64,
            config_fp: 0xBEEF,
            truth: Arc::new((0..n).map(|i| i as f64).collect()),
            analysis: mk(1),
            free_run: mk(2),
            stats: Vec::new(),
            cycle_digests: Vec::new(),
        }
    }

    #[test]
    fn async_writes_are_durable_and_frontier_is_monotone() {
        let scratch = ScratchDir::new("ckpt-async").unwrap();
        let store = CheckpointStore::create(scratch.path().join("ckpt"))
            .unwrap()
            .with_retain(8);
        std::thread::scope(|s| {
            let tracer = RankTracer::new(4, Instant::now());
            let w = AsyncCheckpointer::spawn(s, &store, tracer);
            let mut seen = Vec::new();
            for c in 0..5 {
                w.save_async(sample(c)).unwrap();
                seen.push(w.durable_frontier());
            }
            let (spans, res) = w.drain();
            res.unwrap();
            assert_eq!(w.durable_frontier(), Some(4));
            // Frontier observations are monotone and never ahead of what
            // was handed over.
            let mut last = None;
            for (i, f) in seen.iter().enumerate() {
                assert!(*f >= last, "frontier regressed at save {i}");
                if let Some(f) = f {
                    assert!(*f <= i);
                }
                last = *f;
            }
            // Every member write was traced on the supervisor rank.
            assert_eq!(spans.len(), 5 * 3);
            assert!(spans.iter().all(|sp| sp.rank == 4));
        });
        assert_eq!(store.durable_cycles().unwrap(), vec![0, 1, 2, 3, 4]);
        store.load_cycle(4, 0xBEEF, None).unwrap();
    }

    #[test]
    fn write_errors_are_deferred_and_surfaced_at_the_barrier() {
        let scratch = ScratchDir::new("ckpt-async-err").unwrap();
        let store = CheckpointStore::create(scratch.path().join("ckpt")).unwrap();
        // A plain *file* where cycle 7's directory must go makes the save
        // fail (remove_dir_all on a non-directory).
        std::fs::write(store.root().join("cycle_0007"), b"squatter").unwrap();
        std::thread::scope(|s| {
            let tracer = RankTracer::new(4, Instant::now());
            let w = AsyncCheckpointer::spawn(s, &store, tracer);
            w.save_async(sample(7)).unwrap();
            let (_, res) = w.drain();
            assert!(res.is_err(), "the failed write must surface at drain");
            assert_eq!(w.durable_frontier(), None);
            // The error is consumed: a subsequent drain is clean.
            let (_, res2) = w.drain();
            assert!(res2.is_ok());
        });
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(8))]

        /// Under a random interleaving of hand-overs, drains and frontier
        /// reads, the durable frontier is monotone, never ahead of the
        /// last handed-over cycle, and lags it by at most the one
        /// in-flight write once backpressure has been taken (save_async
        /// returning means every *earlier* write completed). Killing the
        /// writer at a random point (scope exit, no drain) still leaves
        /// every handed-over cycle durable on disk.
        #[test]
        fn durable_frontier_is_monotone_and_lags_by_at_most_one(
            saves in 1usize..6,
            drain_mask in proptest::collection::vec(proptest::prelude::any::<bool>(), 5),
        ) {
            let scratch = ScratchDir::new("ckpt-async-prop").unwrap();
            let store = CheckpointStore::create(scratch.path().join("ckpt"))
                .unwrap()
                .with_retain(8);
            std::thread::scope(|s| {
                let tracer = RankTracer::new(4, Instant::now());
                let w = AsyncCheckpointer::spawn(s, &store, tracer);
                let mut last = None;
                for c in 0..saves {
                    w.save_async(sample(c)).unwrap();
                    // Backpressure: returning from save_async(c) means
                    // cycles 0..c are durable, so the lag is exactly the
                    // one in-flight write.
                    let f = w.durable_frontier();
                    proptest::prop_assert!(f >= last, "frontier regressed");
                    if c > 0 {
                        proptest::prop_assert!(
                            f >= Some(c - 1),
                            "frontier {f:?} lags save {c} by more than one"
                        );
                    }
                    proptest::prop_assert!(f <= Some(c), "frontier ahead of hand-over");
                    last = f;
                    if drain_mask[c % drain_mask.len()] {
                        let (_, res) = w.drain();
                        res.unwrap();
                        proptest::prop_assert_eq!(w.durable_frontier(), Some(c));
                        last = Some(c);
                    }
                }
                Ok(())
            })?;
            // The scope exit is the "kill": Drop flushed the in-flight
            // write, so every handed-over cycle is durable on disk.
            proptest::prop_assert_eq!(
                store.durable_cycles().unwrap(),
                (0..saves).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn drop_flushes_pending_writes() {
        let scratch = ScratchDir::new("ckpt-async-drop").unwrap();
        let store = CheckpointStore::create(scratch.path().join("ckpt")).unwrap();
        std::thread::scope(|s| {
            let tracer = RankTracer::new(4, Instant::now());
            let w = AsyncCheckpointer::spawn(s, &store, tracer);
            w.save_async(sample(2)).unwrap();
            // No drain: Drop must still let the in-flight write finish.
        });
        assert_eq!(store.durable_cycles().unwrap(), vec![2]);
    }
}
