//! Durable checkpoint/restart for multi-cycle assimilation campaigns.
//!
//! A campaign that runs K cycles on faulty hardware needs a recovery line:
//! after each analysis the supervisor persists the *resumable state* — the
//! analysis ensemble, the truth trajectory, the free-running control, the
//! RNG cursor, the accumulated statistics — and on a crash restores the
//! last durable cycle and re-runs from there. This crate is that layer:
//!
//! * **Atomic**: every artifact (member files, the binary aux blob, the
//!   manifest) is written to a temp file, flushed, and renamed into place.
//!   A checkpoint *exists* only once its `MANIFEST.txt` — written last —
//!   is in place; a crash mid-write leaves the previous cycle untouched.
//! * **Self-verifying**: the manifest records an FNV-64 checksum of every
//!   member file and of the aux blob, and ends with a checksum of itself.
//!   Loads verify before trusting anything; a mismatch yields a typed
//!   [`CkptError::CorruptMember`] / [`CkptError::CorruptManifest`], the bad
//!   artifact is quarantined (renamed aside, never silently re-read), and
//!   [`CheckpointStore::load_latest`] falls back to the previous durable
//!   cycle.
//! * **Costed**: member payload I/O (the dominant term: 8·n bytes per
//!   member per direction) is recorded through [`enkf_trace::RankTracer`]
//!   as [`enkf_trace::Op::Ckpt`] / [`enkf_trace::Op::Restore`] spans, so
//!   the DES campaign model can charge the identical byte stream to the
//!   OST model and real-vs-modeled campaign digests stay comparable.
//!
//! On-disk layout under the store root:
//!
//! ```text
//! cycle_0003/
//!   member_00000.bin ... member_000{N-1}.bin   # analysis, FileStore layout
//!   aux.bin                                    # truth + free-run + stats
//!   MANIFEST.txt                               # checksums; written last
//! ```

use enkf_core::Ensemble;
use enkf_data::CycleStats;
use enkf_grid::{FileLayout, Mesh};
use enkf_linalg::Matrix;
use enkf_pfs::FileStore;
use enkf_trace::RankTracer;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

mod writer;
pub use writer::AsyncCheckpointer;

/// FNV-1a 64-bit hash — the checksum used for every checkpoint artifact.
/// Not cryptographic; it detects torn writes and bit rot, which is the
/// failure model here.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Typed checkpoint failures. Corruption variants mean the artifact was
/// quarantined (renamed to `*.quarantined`) so it can never be silently
/// read again; the caller falls back to an earlier cycle.
#[derive(Debug)]
pub enum CkptError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// A member file's checksum did not match the manifest (or the file is
    /// missing/truncated). `actual == 0` with a missing file.
    CorruptMember {
        /// Checkpoint cycle the member belongs to.
        cycle: usize,
        /// Ensemble member index.
        member: usize,
        /// The quarantined (or missing) file.
        path: PathBuf,
        /// Checksum the manifest promised.
        expected: u64,
        /// Checksum of the bytes actually on disk.
        actual: u64,
    },
    /// The manifest (or the aux blob it vouches for) failed verification.
    CorruptManifest {
        /// Checkpoint cycle.
        cycle: usize,
        /// The quarantined manifest.
        path: PathBuf,
        /// What failed.
        detail: String,
    },
    /// The checkpoint was written by a campaign with a different
    /// configuration fingerprint — restoring it would silently change the
    /// experiment.
    ConfigMismatch {
        /// Fingerprint the caller expects.
        expected: u64,
        /// Fingerprint recorded in the checkpoint.
        actual: u64,
    },
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
            CkptError::CorruptMember {
                cycle,
                member,
                path,
                expected,
                actual,
            } => write!(
                f,
                "cycle {cycle} member {member} corrupt ({}): checksum {actual:016x}, \
                 manifest says {expected:016x}; file quarantined",
                path.display()
            ),
            CkptError::CorruptManifest {
                cycle,
                path,
                detail,
            } => write!(
                f,
                "cycle {cycle} manifest corrupt ({}): {detail}",
                path.display()
            ),
            CkptError::ConfigMismatch { expected, actual } => write!(
                f,
                "checkpoint config fingerprint {actual:016x} does not match \
                 campaign fingerprint {expected:016x}"
            ),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<io::Error> for CkptError {
    fn from(e: io::Error) -> Self {
        CkptError::Io(e)
    }
}

/// The resumable state of a campaign after `cycle` completed cycles —
/// everything the supervisor needs to continue as if never interrupted.
///
/// The field arrays are `Arc`-backed shared views of the experiment's
/// copy-on-write state (`enkf_data::CycleState`): building and cloning a
/// checkpoint is O(1) refcount bumps, which is what lets the supervisor
/// hand cycle k's state to the asynchronous writer and immediately start
/// cycle k+1 without deep-copying the ensemble.
#[derive(Debug, Clone)]
pub struct CampaignCheckpoint {
    /// Completed cycles (the next cycle to run).
    pub cycle: usize,
    /// Campaign seed.
    pub seed: u64,
    /// Member count the campaign *started* with (the analysis may hold
    /// fewer after a degraded cycle).
    pub members0: usize,
    /// Raw RNG draws consumed so far (see `enkf_data::CycleState`).
    pub rng_cursor: u64,
    /// Fingerprint of the campaign configuration that wrote this.
    pub config_fp: u64,
    /// Truth trajectory state.
    pub truth: Arc<Vec<f64>>,
    /// The analysis ensemble of the last completed cycle (= the next
    /// background).
    pub analysis: Arc<Ensemble>,
    /// Free-running control ensemble (always `members0` wide).
    pub free_run: Arc<Ensemble>,
    /// Per-cycle statistics accumulated so far.
    pub stats: Vec<CycleStats>,
    /// FNV-64 hash of each completed cycle's trace digest — the
    /// kill–resume conformance artifact.
    pub cycle_digests: Vec<u64>,
}

const MANIFEST: &str = "MANIFEST.txt";
const AUX: &str = "aux.bin";
const MAGIC: &str = "SENKF-CKPT v1";
const AUX_MAGIC: &[u8; 8] = b"SENKFAUX";

/// A directory of durable per-cycle checkpoints with bounded retention.
#[derive(Debug)]
pub struct CheckpointStore {
    root: PathBuf,
    retain: usize,
}

impl CheckpointStore {
    /// Open (creating if needed) a checkpoint directory. Retains the last
    /// 2 durable cycles by default — enough for one fallback level.
    pub fn create(root: impl AsRef<Path>) -> io::Result<Self> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(CheckpointStore { root, retain: 2 })
    }

    /// Override how many durable cycles to keep (minimum 1).
    pub fn with_retain(mut self, retain: usize) -> Self {
        self.retain = retain.max(1);
        self
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Directory of one cycle's checkpoint.
    pub fn cycle_dir(&self, cycle: usize) -> PathBuf {
        self.root.join(format!("cycle_{cycle:04}"))
    }

    /// Cycles with a manifest in place (durably committed), ascending.
    /// Quarantined or partially-written cycles do not appear.
    pub fn durable_cycles(&self) -> io::Result<Vec<usize>> {
        let mut cycles = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(num) = name.strip_prefix("cycle_") else {
                continue;
            };
            let Ok(cycle) = num.parse::<usize>() else {
                continue;
            };
            if entry.path().join(MANIFEST).is_file() {
                cycles.push(cycle);
            }
        }
        cycles.sort_unstable();
        Ok(cycles)
    }

    /// Durably persist a checkpoint: member files through the
    /// [`FileStore`] pooled write path (temp + fsync + rename each), then
    /// the aux blob, then — last — the manifest. Member payload writes are
    /// recorded as [`enkf_trace::Op::Ckpt`] spans (8·n bytes, one seek
    /// each). Older cycles beyond the retention budget are pruned.
    pub fn save(
        &self,
        ckpt: &CampaignCheckpoint,
        mut tracer: Option<&mut RankTracer>,
    ) -> io::Result<()> {
        let mesh = ckpt.analysis.mesh();
        let n = mesh.n();
        let dir = self.cycle_dir(ckpt.cycle);
        // A leftover partial attempt for this cycle (no manifest) is stale:
        // clear it so FileStore::open starts from an empty directory.
        if dir.exists() {
            fs::remove_dir_all(&dir)?;
        }
        fs::create_dir_all(&dir)?;
        let store = FileStore::open(&dir, FileLayout::new(mesh, 8))?;
        let members = ckpt.analysis.size();
        let mut member_crcs = Vec::with_capacity(members);
        let mut enc = MemberEncoder::new();
        for k in 0..members {
            let bytes = 8 * n as u64;
            let crc = if let Some(t) = tracer.as_deref_mut() {
                t.ckpt(Some(k), bytes, 1, || {
                    enc.write_durable(&store, &ckpt.analysis, k)
                })?
            } else {
                enc.write_durable(&store, &ckpt.analysis, k)?
            };
            member_crcs.push(crc);
        }

        let aux = encode_aux(ckpt);
        write_atomic(&dir, AUX, &aux)?;
        let aux_crc = fnv64(&aux);

        let mut m = String::new();
        m.push_str(MAGIC);
        m.push('\n');
        m.push_str(&format!("cycle={}\n", ckpt.cycle));
        m.push_str(&format!("seed={}\n", ckpt.seed));
        m.push_str(&format!("members0={}\n", ckpt.members0));
        m.push_str(&format!("members={members}\n"));
        m.push_str(&format!("rng_cursor={}\n", ckpt.rng_cursor));
        m.push_str(&format!("config_fp={:016x}\n", ckpt.config_fp));
        m.push_str(&format!("nx={} ny={}\n", mesh.nx(), mesh.ny()));
        m.push_str(&format!("aux_crc={aux_crc:016x}\n"));
        for (k, crc) in member_crcs.iter().enumerate() {
            m.push_str(&format!("member {k} crc={crc:016x}\n"));
        }
        m.push_str(&format!("crc={:016x}\n", fnv64(m.as_bytes())));
        write_atomic(&dir, MANIFEST, m.as_bytes())?;

        self.prune()?;
        Ok(())
    }

    /// Load and fully verify one cycle's checkpoint. Corrupt artifacts are
    /// quarantined and reported as typed errors; member payload reads are
    /// recorded as [`enkf_trace::Op::Restore`] spans.
    pub fn load_cycle(
        &self,
        cycle: usize,
        config_fp: u64,
        mut tracer: Option<&mut RankTracer>,
    ) -> Result<CampaignCheckpoint, CkptError> {
        let dir = self.cycle_dir(cycle);
        let mpath = dir.join(MANIFEST);
        let corrupt_manifest = |detail: String| {
            // Quarantine: the cycle must stop looking durable.
            let _ = fs::rename(&mpath, dir.join("MANIFEST.txt.quarantined"));
            CkptError::CorruptManifest {
                cycle,
                path: mpath.clone(),
                detail,
            }
        };
        let text = fs::read_to_string(&mpath).map_err(|e| CkptError::CorruptManifest {
            cycle,
            path: mpath.clone(),
            detail: format!("manifest unreadable: {e}"),
        })?;
        let man = parse_manifest(&text).map_err(&corrupt_manifest)?;
        if man.cycle != cycle {
            return Err(corrupt_manifest(format!(
                "manifest says cycle {}, directory says {cycle}",
                man.cycle
            )));
        }
        if man.config_fp != config_fp {
            return Err(CkptError::ConfigMismatch {
                expected: config_fp,
                actual: man.config_fp,
            });
        }
        let mesh = Mesh::new(man.nx, man.ny);
        let n = mesh.n();

        // Aux blob (truth, free run, stats, digests) — verified first so a
        // torn aux never pairs with good members.
        let aux_path = dir.join(AUX);
        let aux =
            fs::read(&aux_path).map_err(|e| corrupt_manifest(format!("aux unreadable: {e}")))?;
        if fnv64(&aux) != man.aux_crc {
            let _ = fs::rename(&aux_path, dir.join("aux.bin.quarantined"));
            return Err(corrupt_manifest(format!(
                "aux checksum {:016x} != manifest {:016x}",
                fnv64(&aux),
                man.aux_crc
            )));
        }
        let decoded = decode_aux(&aux, mesh, man.members0).map_err(corrupt_manifest)?;

        // Member payloads: raw read, checksum against the manifest, then
        // parse — a corrupt file is quarantined before anything trusts it.
        let store = FileStore::open(&dir, FileLayout::new(mesh, 8)).map_err(CkptError::Io)?;
        let mut states = Matrix::zeros(n, man.members);
        for k in 0..man.members {
            let path = store.member_path(k);
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(_) => {
                    return Err(CkptError::CorruptMember {
                        cycle,
                        member: k,
                        path,
                        expected: man.member_crcs[k],
                        actual: 0,
                    })
                }
            };
            let actual = fnv64(&bytes);
            if actual != man.member_crcs[k] || bytes.len() != 8 * n {
                let mut q = path.clone();
                q.set_extension("bin.quarantined");
                let _ = fs::rename(&path, &q);
                return Err(CkptError::CorruptMember {
                    cycle,
                    member: k,
                    path,
                    expected: man.member_crcs[k],
                    actual,
                });
            }
            if let Some(t) = tracer.as_deref_mut() {
                t.restore(Some(k), 8 * n as u64, 1, || ());
            }
            for (i, chunk) in bytes.chunks_exact(8).enumerate() {
                states[(i, k)] = f64::from_le_bytes(chunk.try_into().unwrap());
            }
        }

        Ok(CampaignCheckpoint {
            cycle,
            seed: man.seed,
            members0: man.members0,
            rng_cursor: man.rng_cursor,
            config_fp: man.config_fp,
            truth: Arc::new(decoded.truth),
            analysis: Arc::new(Ensemble::new(mesh, states)),
            free_run: Arc::new(decoded.free_run),
            stats: decoded.stats,
            cycle_digests: decoded.digests,
        })
    }

    /// Load the most recent durable checkpoint, falling back past corrupt
    /// cycles (each is quarantined and reported in the returned list).
    /// `Ok(None)` when no durable checkpoint survives.
    #[allow(clippy::type_complexity)]
    pub fn load_latest(
        &self,
        config_fp: u64,
        mut tracer: Option<&mut RankTracer>,
    ) -> Result<Option<(CampaignCheckpoint, Vec<CkptError>)>, CkptError> {
        let mut skipped = Vec::new();
        for cycle in self.durable_cycles()?.into_iter().rev() {
            match self.load_cycle(cycle, config_fp, tracer.as_deref_mut()) {
                Ok(ckpt) => return Ok(Some((ckpt, skipped))),
                Err(e @ (CkptError::CorruptMember { .. } | CkptError::CorruptManifest { .. })) => {
                    skipped.push(e);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(None)
    }

    fn prune(&self) -> io::Result<()> {
        let cycles = self.durable_cycles()?;
        if cycles.len() > self.retain {
            for &c in &cycles[..cycles.len() - self.retain] {
                fs::remove_dir_all(self.cycle_dir(c))?;
            }
        }
        // Sweep non-durable leftovers — quarantined manifests/members and
        // torn partial attempts — once their cycle falls out of the
        // retention window. Without this, `*.quarantined` artifacts (whose
        // cycle directory no longer counts as durable) accumulate forever.
        let Some(&cutoff) = cycles.get(cycles.len().saturating_sub(self.retain)) else {
            return Ok(());
        };
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(num) = name.strip_prefix("cycle_") else {
                continue;
            };
            let Ok(cycle) = num.parse::<usize>() else {
                continue;
            };
            if cycle < cutoff && !entry.path().join(MANIFEST).is_file() {
                fs::remove_dir_all(entry.path())?;
            }
        }
        Ok(())
    }
}

/// Reusable encode state for checkpoint member writes.
///
/// Gathers a member column into an owned `f64` buffer, bulk-converts it
/// *once* to little-endian bytes staged in the store's
/// [`enkf_pfs::BufferPool`] (the PR 7 `kernel::convert` path), checksums
/// those same bytes, and hands them to the durable write path — one
/// conversion instead of two, and zero payload allocations at steady
/// state (pinned by `tests/dataplane_alloc_free.rs`).
#[derive(Debug, Default)]
pub struct MemberEncoder {
    col: Vec<f64>,
}

impl MemberEncoder {
    /// An encoder with empty (lazily grown) buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Durably write member `k` of `ensemble` through `store`, returning
    /// the FNV-64 checksum of the exact bytes written.
    pub fn write_durable(
        &mut self,
        store: &FileStore,
        ensemble: &Ensemble,
        k: usize,
    ) -> io::Result<u64> {
        ensemble.member_into(k, &mut self.col);
        let mut buf = store.pool().take_bytes(0);
        enkf_linalg::kernel::convert::extend_f64_le(&self.col, &mut buf);
        let crc = fnv64(&buf);
        let res = store.write_member_bytes_durable(k, &buf);
        store.pool().put_bytes(buf);
        res?;
        Ok(crc)
    }
}

/// Write `bytes` to `dir/name` atomically: temp file in the same
/// directory, flush to stable storage, rename over the target, sync the
/// directory so the rename itself is durable.
fn write_atomic(dir: &Path, name: &str, bytes: &[u8]) -> io::Result<()> {
    let tmp = dir.join(format!("{name}.tmp"));
    let target = dir.join(name);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, &target)?;
    fs::File::open(dir).and_then(|d| d.sync_all())?;
    Ok(())
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_f64s(buf: &mut Vec<u8>, vs: &[f64]) {
    for v in vs {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn encode_aux(ckpt: &CampaignCheckpoint) -> Vec<u8> {
    let n = ckpt.analysis.mesh().n();
    let mut buf = Vec::with_capacity(48 + 8 * n * (1 + ckpt.members0));
    buf.extend_from_slice(AUX_MAGIC);
    push_u64(&mut buf, n as u64);
    push_u64(&mut buf, ckpt.members0 as u64);
    push_u64(&mut buf, ckpt.stats.len() as u64);
    push_u64(&mut buf, ckpt.cycle_digests.len() as u64);
    push_f64s(&mut buf, &ckpt.truth);
    for k in 0..ckpt.members0 {
        push_f64s(&mut buf, &ckpt.free_run.member(k));
    }
    for s in &ckpt.stats {
        push_u64(&mut buf, s.cycle as u64);
        push_f64s(
            &mut buf,
            &[s.forecast_rmse, s.analysis_rmse, s.free_run_rmse],
        );
    }
    for &d in &ckpt.cycle_digests {
        push_u64(&mut buf, d);
    }
    buf
}

struct DecodedAux {
    truth: Vec<f64>,
    free_run: Ensemble,
    stats: Vec<CycleStats>,
    digests: Vec<u64>,
}

fn decode_aux(bytes: &[u8], mesh: Mesh, members0: usize) -> Result<DecodedAux, String> {
    let n = mesh.n();
    let mut off = 0usize;
    let take = |off: &mut usize, len: usize| -> Result<&[u8], String> {
        let s = bytes
            .get(*off..*off + len)
            .ok_or_else(|| format!("aux truncated at offset {}", *off))?;
        *off += len;
        Ok(s)
    };
    if take(&mut off, 8)? != AUX_MAGIC {
        return Err("aux magic mismatch".into());
    }
    let rd_u64 = |off: &mut usize| -> Result<u64, String> {
        Ok(u64::from_le_bytes(take(off, 8)?.try_into().unwrap()))
    };
    if rd_u64(&mut off)? != n as u64 {
        return Err("aux field size mismatch".into());
    }
    if rd_u64(&mut off)? != members0 as u64 {
        return Err("aux member count mismatch".into());
    }
    let stats_len = rd_u64(&mut off)? as usize;
    let digests_len = rd_u64(&mut off)? as usize;
    let rd_f64s = |off: &mut usize, count: usize| -> Result<Vec<f64>, String> {
        let raw = take(off, 8 * count)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    };
    let truth = rd_f64s(&mut off, n)?;
    let mut free = Matrix::zeros(n, members0);
    for k in 0..members0 {
        let col = rd_f64s(&mut off, n)?;
        free.set_col(k, &col);
    }
    let mut stats = Vec::with_capacity(stats_len);
    for _ in 0..stats_len {
        let cycle = rd_u64(&mut off)? as usize;
        let vals = rd_f64s(&mut off, 3)?;
        stats.push(CycleStats {
            cycle,
            forecast_rmse: vals[0],
            analysis_rmse: vals[1],
            free_run_rmse: vals[2],
        });
    }
    let mut digests = Vec::with_capacity(digests_len);
    for _ in 0..digests_len {
        digests.push(rd_u64(&mut off)?);
    }
    if off != bytes.len() {
        return Err(format!("aux has {} trailing bytes", bytes.len() - off));
    }
    Ok(DecodedAux {
        truth,
        free_run: Ensemble::new(mesh, free),
        stats,
        digests,
    })
}

struct Manifest {
    cycle: usize,
    seed: u64,
    members0: usize,
    members: usize,
    rng_cursor: u64,
    config_fp: u64,
    nx: usize,
    ny: usize,
    aux_crc: u64,
    member_crcs: Vec<u64>,
}

fn parse_manifest(text: &str) -> Result<Manifest, String> {
    // Self-verification: the last line checksums everything before it.
    let body_end = text
        .trim_end_matches('\n')
        .rfind('\n')
        .ok_or("manifest too short")?;
    let (body, tail) = text.split_at(body_end + 1);
    let tail = tail.trim_end();
    let declared = tail
        .strip_prefix("crc=")
        .ok_or("missing trailing crc line")?;
    let declared = u64::from_str_radix(declared, 16).map_err(|e| format!("bad crc: {e}"))?;
    if fnv64(body.as_bytes()) != declared {
        return Err(format!(
            "manifest checksum {:016x} != declared {declared:016x}",
            fnv64(body.as_bytes())
        ));
    }
    let mut lines = body.lines();
    if lines.next() != Some(MAGIC) {
        return Err("bad magic line".into());
    }
    let mut m = Manifest {
        cycle: 0,
        seed: 0,
        members0: 0,
        members: 0,
        rng_cursor: 0,
        config_fp: 0,
        nx: 0,
        ny: 0,
        aux_crc: 0,
        member_crcs: Vec::new(),
    };
    for line in lines {
        if let Some(rest) = line.strip_prefix("member ") {
            let (k, crc) = rest
                .split_once(" crc=")
                .ok_or_else(|| format!("bad member line: {line}"))?;
            let k: usize = k.parse().map_err(|e| format!("bad member index: {e}"))?;
            if k != m.member_crcs.len() {
                return Err(format!("member lines out of order at {k}"));
            }
            m.member_crcs
                .push(u64::from_str_radix(crc, 16).map_err(|e| format!("bad member crc: {e}"))?);
            continue;
        }
        let (key, val) = line
            .split_once('=')
            .ok_or_else(|| format!("bad line: {line}"))?;
        match key {
            "cycle" => m.cycle = val.parse().map_err(|e| format!("bad cycle: {e}"))?,
            "seed" => m.seed = val.parse().map_err(|e| format!("bad seed: {e}"))?,
            "members0" => m.members0 = val.parse().map_err(|e| format!("bad members0: {e}"))?,
            "members" => m.members = val.parse().map_err(|e| format!("bad members: {e}"))?,
            "rng_cursor" => {
                m.rng_cursor = val.parse().map_err(|e| format!("bad rng_cursor: {e}"))?
            }
            "config_fp" => {
                m.config_fp =
                    u64::from_str_radix(val, 16).map_err(|e| format!("bad config_fp: {e}"))?
            }
            "nx" => {
                let (nx, ny) = val
                    .split_once(" ny=")
                    .ok_or_else(|| format!("bad mesh line: {line}"))?;
                m.nx = nx.parse().map_err(|e| format!("bad nx: {e}"))?;
                m.ny = ny.parse().map_err(|e| format!("bad ny: {e}"))?;
            }
            "aux_crc" => {
                m.aux_crc = u64::from_str_radix(val, 16).map_err(|e| format!("bad aux_crc: {e}"))?
            }
            other => return Err(format!("unknown manifest key {other}")),
        }
    }
    if m.members == 0 || m.nx == 0 || m.ny == 0 {
        return Err("manifest missing required fields".into());
    }
    if m.member_crcs.len() != m.members {
        return Err(format!(
            "manifest lists {} member checksums for {} members",
            m.member_crcs.len(),
            m.members
        ));
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use enkf_pfs::ScratchDir;

    fn sample(cycle: usize, members: usize) -> CampaignCheckpoint {
        let mesh = Mesh::new(6, 4);
        let n = mesh.n();
        let mk = |salt: usize| {
            Matrix::from_fn(n, members, |i, k| {
                ((i * 31 + k * 7 + salt) as f64).sin() * 3.0 - 1.0
            })
        };
        CampaignCheckpoint {
            cycle,
            seed: 42,
            members0: members,
            rng_cursor: 1234 + cycle as u64,
            config_fp: 0xFEED_BEEF,
            truth: Arc::new((0..n).map(|i| (i as f64).cos()).collect()),
            analysis: Arc::new(Ensemble::new(mesh, mk(1))),
            free_run: Arc::new(Ensemble::new(mesh, mk(2))),
            stats: (0..cycle)
                .map(|c| CycleStats {
                    cycle: c,
                    forecast_rmse: 0.5 + c as f64,
                    analysis_rmse: 0.25 + c as f64,
                    free_run_rmse: 0.75 + c as f64,
                })
                .collect(),
            cycle_digests: (0..cycle).map(|c| 0x1000 + c as u64).collect(),
        }
    }

    #[test]
    fn save_load_round_trips_bit_exactly() {
        let scratch = ScratchDir::new("ckpt-rt").unwrap();
        let store = CheckpointStore::create(scratch.path().join("ckpt")).unwrap();
        let ckpt = sample(3, 5);
        store.save(&ckpt, None).unwrap();
        let back = store.load_cycle(3, 0xFEED_BEEF, None).unwrap();
        assert_eq!(back.analysis.states(), ckpt.analysis.states());
        assert_eq!(back.free_run.states(), ckpt.free_run.states());
        assert_eq!(back.truth, ckpt.truth);
        assert_eq!(back.stats, ckpt.stats);
        assert_eq!(back.cycle_digests, ckpt.cycle_digests);
        assert_eq!(back.rng_cursor, ckpt.rng_cursor);
        assert_eq!(back.seed, ckpt.seed);
        assert_eq!(back.members0, ckpt.members0);
    }

    #[test]
    fn retention_prunes_old_cycles() {
        let scratch = ScratchDir::new("ckpt-prune").unwrap();
        let store = CheckpointStore::create(scratch.path().join("ckpt")).unwrap();
        for c in 0..5 {
            store.save(&sample(c, 3), None).unwrap();
        }
        assert_eq!(store.durable_cycles().unwrap(), vec![3, 4]);
    }

    /// Regression: quarantined artifacts used to escape retention forever —
    /// a cycle whose manifest was quarantined no longer counts as durable,
    /// so `prune` never saw it. The sweep must delete quarantined/torn
    /// cycle directories once they fall out of the retention window.
    #[test]
    fn quarantined_artifacts_are_swept_out_of_the_retention_window() {
        let scratch = ScratchDir::new("ckpt-sweep").unwrap();
        let store = CheckpointStore::create(scratch.path().join("ckpt")).unwrap();
        store.save(&sample(1, 3), None).unwrap();
        store.save(&sample(2, 3), None).unwrap();
        // Corrupt cycle 2's manifest; the failed load quarantines it.
        let mpath = store.cycle_dir(2).join(MANIFEST);
        let mut bytes = fs::read(&mpath).unwrap();
        bytes[20] ^= 0x01;
        fs::write(&mpath, &bytes).unwrap();
        assert!(store.load_cycle(2, 0xFEED_BEEF, None).is_err());
        assert!(store
            .cycle_dir(2)
            .join("MANIFEST.txt.quarantined")
            .is_file());
        // New durable cycles push cycle 2 out of the retention window; the
        // quarantined directory must be swept, not kept forever.
        for c in 3..6 {
            store.save(&sample(c, 3), None).unwrap();
        }
        assert_eq!(store.durable_cycles().unwrap(), vec![4, 5]);
        assert!(
            !store.cycle_dir(2).exists(),
            "quarantined cycle directory must be swept once out of retention"
        );
        let leftovers: Vec<_> = walk_quarantined(store.root());
        assert!(
            leftovers.is_empty(),
            "no quarantined artifacts may survive the sweep: {leftovers:?}"
        );
    }

    fn walk_quarantined(root: &Path) -> Vec<PathBuf> {
        let mut found = Vec::new();
        let mut stack = vec![root.to_path_buf()];
        while let Some(dir) = stack.pop() {
            for entry in fs::read_dir(&dir).unwrap() {
                let p = entry.unwrap().path();
                if p.is_dir() {
                    stack.push(p);
                } else if p.to_string_lossy().ends_with(".quarantined") {
                    found.push(p);
                }
            }
        }
        found
    }

    #[test]
    fn config_mismatch_is_typed_and_non_destructive() {
        let scratch = ScratchDir::new("ckpt-fp").unwrap();
        let store = CheckpointStore::create(scratch.path().join("ckpt")).unwrap();
        store.save(&sample(1, 3), None).unwrap();
        match store.load_cycle(1, 0xDEAD, None) {
            Err(CkptError::ConfigMismatch { actual, .. }) => assert_eq!(actual, 0xFEED_BEEF),
            other => panic!("expected ConfigMismatch, got {other:?}"),
        }
        // Not corruption: the checkpoint must remain durable.
        assert_eq!(store.durable_cycles().unwrap(), vec![1]);
    }

    #[test]
    fn corrupt_member_quarantines_and_falls_back() {
        let scratch = ScratchDir::new("ckpt-corrupt").unwrap();
        let store = CheckpointStore::create(scratch.path().join("ckpt")).unwrap();
        store.save(&sample(1, 3), None).unwrap();
        store.save(&sample(2, 3), None).unwrap();
        // Flip one byte of cycle 2's member 1.
        let victim = store.cycle_dir(2).join("member_00001.bin");
        let mut bytes = fs::read(&victim).unwrap();
        bytes[17] ^= 0x40;
        fs::write(&victim, &bytes).unwrap();
        match store.load_cycle(2, 0xFEED_BEEF, None) {
            Err(CkptError::CorruptMember { cycle, member, .. }) => {
                assert_eq!((cycle, member), (2, 1));
            }
            other => panic!("expected CorruptMember, got {other:?}"),
        }
        assert!(!victim.exists(), "corrupt member must be quarantined");
        let (back, skipped) = store.load_latest(0xFEED_BEEF, None).unwrap().unwrap();
        assert_eq!(back.cycle, 1, "fallback to the previous durable cycle");
        assert_eq!(skipped.len(), 1);
    }

    #[test]
    fn corrupt_manifest_quarantines_and_falls_back() {
        let scratch = ScratchDir::new("ckpt-man").unwrap();
        let store = CheckpointStore::create(scratch.path().join("ckpt")).unwrap();
        store.save(&sample(1, 3), None).unwrap();
        store.save(&sample(2, 3), None).unwrap();
        let mpath = store.cycle_dir(2).join(MANIFEST);
        let mut bytes = fs::read(&mpath).unwrap();
        bytes[20] ^= 0x01;
        fs::write(&mpath, &bytes).unwrap();
        match store.load_cycle(2, 0xFEED_BEEF, None) {
            Err(CkptError::CorruptManifest { cycle, .. }) => assert_eq!(cycle, 2),
            other => panic!("expected CorruptManifest, got {other:?}"),
        }
        let (back, _) = store.load_latest(0xFEED_BEEF, None).unwrap().unwrap();
        assert_eq!(back.cycle, 1);
    }

    #[test]
    fn checkpoint_io_is_traced() {
        use enkf_trace::{Op, RankTracer};
        use std::time::Instant;
        let scratch = ScratchDir::new("ckpt-trace").unwrap();
        let store = CheckpointStore::create(scratch.path().join("ckpt")).unwrap();
        let ckpt = sample(1, 4);
        let n = ckpt.analysis.mesh().n() as u64;
        let mut tracer = RankTracer::new(0, Instant::now());
        store.save(&ckpt, Some(&mut tracer)).unwrap();
        store.load_cycle(1, 0xFEED_BEEF, Some(&mut tracer)).unwrap();
        let spans = tracer.into_spans();
        let ckpts: Vec<_> = spans.iter().filter(|s| s.op == Op::Ckpt).collect();
        let restores: Vec<_> = spans.iter().filter(|s| s.op == Op::Restore).collect();
        assert_eq!(ckpts.len(), 4);
        assert_eq!(restores.len(), 4);
        assert!(ckpts.iter().all(|s| s.bytes == 8 * n && s.seeks == 1));
        assert!(restores.iter().all(|s| s.bytes == 8 * n && s.seeks == 1));
    }
}
