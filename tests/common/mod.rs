//! Shared integration-test harness: a seeded scenario written into a
//! scratch-backed [`FileStore`], used by the cross-variant, failure
//! injection, and fault resilience suites.

#![allow(dead_code)] // each test binary uses a subset of the helpers

use s_enkf::data::{write_ensemble, Scenario, ScenarioBuilder};
use s_enkf::grid::{FileLayout, Mesh};
use s_enkf::pfs::{FileStore, ScratchDir};

/// A scenario plus the on-disk ensemble it was written to. The scratch
/// directory is removed when the harness drops.
pub struct Harness {
    pub scratch: ScratchDir,
    pub store: FileStore,
    pub scenario: Scenario,
}

/// Build a seeded scenario, write its ensemble into a scratch-backed store
/// whose files carry `levels` vertical levels per point, and return the
/// bundle.
pub fn harness(mesh: Mesh, members: usize, seed: u64, levels: u64) -> Harness {
    harness_labeled("integration", mesh, members, seed, levels)
}

/// [`harness`] with a custom scratch-directory label (useful when several
/// tests in one binary must not collide).
pub fn harness_labeled(label: &str, mesh: Mesh, members: usize, seed: u64, levels: u64) -> Harness {
    let scenario = ScenarioBuilder::new(mesh)
        .members(members)
        .seed(seed)
        .build();
    let scratch = ScratchDir::new(label).unwrap();
    let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 8 * levels)).unwrap();
    write_ensemble(&store, &scenario.ensemble).unwrap();
    Harness {
        scratch,
        store,
        scenario,
    }
}
