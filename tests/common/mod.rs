//! Shared integration-test harness: a seeded scenario written into a
//! scratch-backed [`FileStore`], used by the cross-variant, failure
//! injection, and fault resilience suites — plus the [`TenantMix`]
//! builder the campaign and scheduler conformance suites compose their
//! geometry × executor × fault plan × quota combinations from.

#![allow(dead_code)] // each test binary uses a subset of the helpers

use s_enkf::ckpt::CheckpointStore;
use s_enkf::core::LocalAnalysis;
use s_enkf::data::{write_ensemble, CycleConfig, Scenario, ScenarioBuilder};
use s_enkf::fault::{FaultConfig, RetryPolicy};
use s_enkf::grid::{FileLayout, LocalizationRadius, Mesh};
use s_enkf::parallel::{CampaignConfig, CampaignExecutor, ModelConfig};
use s_enkf::pfs::{FileStore, ScratchDir};
use s_enkf::sched::{JobModel, JobSpec, Quota, TenantId, TenantSpec};
use s_enkf::tuning::{Params, Workload};

/// A scenario plus the on-disk ensemble it was written to. The scratch
/// directory is removed when the harness drops.
pub struct Harness {
    pub scratch: ScratchDir,
    pub store: FileStore,
    pub scenario: Scenario,
}

/// Build a seeded scenario, write its ensemble into a scratch-backed store
/// whose files carry `levels` vertical levels per point, and return the
/// bundle.
pub fn harness(mesh: Mesh, members: usize, seed: u64, levels: u64) -> Harness {
    harness_labeled("integration", mesh, members, seed, levels)
}

/// [`harness`] with a custom scratch-directory label (useful when several
/// tests in one binary must not collide).
pub fn harness_labeled(label: &str, mesh: Mesh, members: usize, seed: u64, levels: u64) -> Harness {
    let scenario = ScenarioBuilder::new(mesh)
        .members(members)
        .seed(seed)
        .build();
    let scratch = ScratchDir::new(label).unwrap();
    let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 8 * levels)).unwrap();
    write_ensemble(&store, &scenario.ensemble).unwrap();
    Harness {
        scratch,
        store,
        scenario,
    }
}

/// The S-EnKF decomposition the conformance suites drive everywhere.
pub const SENKF: Params = Params {
    nsdx: 2,
    nsdy: 2,
    layers: 2,
    ncg: 2,
};

/// A multi-tenant test mix: one campaign geometry (mesh × members ×
/// observation stride × localization), shared across every tenant's jobs,
/// composed with per-tenant weights/quotas and per-job executors, fault
/// plans and SLAs. The campaign and scheduler conformance suites build all
/// their campaign configs, stores, and scheduler inputs from one of these
/// so "the same campaign, solo vs scheduled" is true by construction.
#[derive(Debug, Clone)]
pub struct TenantMix {
    /// The mesh every campaign in the mix runs on.
    pub mesh: Mesh,
    /// Ensemble members per campaign.
    pub members: usize,
    /// Vertical levels per grid point in the on-disk layout.
    pub h: u64,
    /// Localization radius of every analysis.
    pub radius: LocalizationRadius,
    /// Campaign seed (all campaigns in a mix share it — isolation means
    /// identical jobs must produce identical results).
    pub seed: u64,
    /// Multiplicative inflation.
    pub inflation: f64,
    /// Restart/backoff policy for every campaign.
    pub restart: RetryPolicy,
    tenants: Vec<TenantSpec>,
    jobs: Vec<(TenantId, JobSpec)>,
}

impl TenantMix {
    /// The small conformance geometry: 24×12 mesh, 4 members, 8 levels,
    /// radius-1 localization, seed 17 — what the campaign conformance
    /// suite has always pinned.
    pub fn small() -> Self {
        TenantMix {
            mesh: Mesh::new(24, 12),
            members: 4,
            h: 8,
            radius: LocalizationRadius { xi: 1, eta: 1 },
            seed: 17,
            inflation: 1.05,
            restart: RetryPolicy {
                max_retries: 3,
                base_backoff: 1e-6,
                multiplier: 2.0,
                ..RetryPolicy::default()
            },
            tenants: Vec::new(),
            jobs: Vec::new(),
        }
    }

    /// Change the campaign seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Add a tenant (ids are assigned 0, 1, … in call order) with the
    /// default quota.
    pub fn tenant(mut self, weight: f64) -> Self {
        let id = self.tenants.len() as u32;
        self.tenants.push(TenantSpec::new(id, weight));
        self
    }

    /// Replace the quota of the most recently added tenant.
    pub fn quota(mut self, quota: Quota) -> Self {
        self.tenants
            .last_mut()
            .expect("quota() requires a tenant() first")
            .quota = quota;
        self
    }

    /// Add a best-effort job for the most recently added tenant.
    pub fn job(mut self, exec: CampaignExecutor, cycles: usize) -> Self {
        let tenant = self
            .tenants
            .last()
            .expect("job() requires a tenant() first")
            .id;
        let spec = JobSpec::best_effort(exec, self.campaign_cfg_for(exec, cycles));
        self.jobs.push((tenant, spec));
        self
    }

    /// Attach a fault plan to the most recently added job.
    pub fn fault(mut self, fault: FaultConfig) -> Self {
        self.jobs
            .last_mut()
            .expect("fault() requires a job() first")
            .1
            .fault = fault;
        self
    }

    /// Attach a DES model and an SLA to the most recently added job
    /// (panics for executors without a model, i.e. L-EnKF).
    pub fn sla(mut self, sla: f64) -> Self {
        let model_cfg = self.model_cfg();
        let spec = &mut self
            .jobs
            .last_mut()
            .expect("sla() requires a job() first")
            .1;
        let variant = JobSpec::variant_of(&spec.exec).expect("sla() requires a modelable executor");
        spec.model = Some(JobModel {
            cfg: model_cfg,
            variant,
            checkpoint: true,
        });
        spec.sla = Some(sla);
        self
    }

    /// Cap the bandwidth demand of the most recently added job.
    pub fn bw_demand(mut self, demand: f64) -> Self {
        self.jobs
            .last_mut()
            .expect("bw_demand() requires a job() first")
            .1
            .bw_demand = demand;
        self
    }

    /// The registered tenants.
    pub fn tenants(&self) -> &[TenantSpec] {
        &self.tenants
    }

    /// The composed jobs, in builder order.
    pub fn jobs(&self) -> &[(TenantId, JobSpec)] {
        &self.jobs
    }

    /// The mix's campaign configuration for a `cycles`-cycle run.
    pub fn campaign_cfg(&self, cycles: usize) -> CampaignConfig {
        CampaignConfig {
            mesh: self.mesh,
            cycles,
            members: self.members,
            cycle: CycleConfig::default(),
            seed: self.seed,
            analysis: LocalAnalysis::new(self.radius),
            inflation: self.inflation,
            restart: self.restart,
        }
    }

    fn campaign_cfg_for(&self, _exec: CampaignExecutor, cycles: usize) -> CampaignConfig {
        self.campaign_cfg(cycles)
    }

    /// The DES substrate model matching this mix's geometry (paper
    /// machine parameters, mix workload).
    pub fn model_cfg(&self) -> ModelConfig {
        let mut cfg = ModelConfig::paper();
        cfg.workload = Workload {
            nx: self.mesh.nx(),
            ny: self.mesh.ny(),
            members: self.members,
            h: self.h,
            xi: self.radius.xi,
            eta: self.radius.eta,
        };
        // Campaign cycles observe through `CycleConfig::default()`'s
        // network, so the modeled observation geometry must match it (the
        // batched D-EnKF model sizes its exchange blocks from this).
        cfg.obs_stride = CycleConfig::default().obs_stride;
        cfg
    }

    /// Fresh, isolated work + checkpoint stores for one campaign of this
    /// mix, under one scratch directory.
    pub fn stores(&self, label: &str) -> (ScratchDir, FileStore, CheckpointStore) {
        let scratch = ScratchDir::new(label).unwrap();
        let work_dir = scratch.path().join("work");
        std::fs::create_dir_all(&work_dir).unwrap();
        let work = FileStore::open(&work_dir, FileLayout::new(self.mesh, self.h)).unwrap();
        let ckpt = CheckpointStore::create(scratch.path().join("ckpt")).unwrap();
        (scratch, work, ckpt)
    }
}
