//! Resilient execution under a deterministic fault plan.
//!
//! Degraded (N−1) mode must be *exactly* the analysis an N−1 ensemble
//! would have produced — member dropout may not perturb the surviving
//! members' numerics by even an ulp. Recoverable faults (reads that fail
//! and then succeed on retry) must be invisible in the analysis, visible
//! only in the fault log and the trace's fault spans.

mod common;

use common::harness_labeled;
use s_enkf::core::{EnkfError, LocalAnalysis};
use s_enkf::fault::{FaultConfig, FaultEvent, FaultPlan, RetryPolicy, SubstrateError};
use s_enkf::grid::{LocalizationRadius, Mesh};
use s_enkf::parallel::{AssimilationSetup, LEnkf, PEnkf, SEnkf};
use s_enkf::trace::Op;
use s_enkf::tuning::Params;

fn fast_retry() -> RetryPolicy {
    // Keep the wall-clock cost of injected backoffs negligible in tests.
    RetryPolicy {
        max_retries: 3,
        base_backoff: 1e-6,
        multiplier: 2.0,
        ..RetryPolicy::default()
    }
}

const SENKF: Params = Params {
    nsdx: 2,
    nsdy: 2,
    layers: 2,
    ncg: 2,
};

/// Dropping the *last* member in degraded mode must reproduce, bit for
/// bit, a from-scratch run of the same scenario with one fewer member:
/// the perturbed-observation streams are per-row and drawn member-by-
/// member, so the first N−1 columns of the N-member draw are exactly the
/// (N−1)-member draw.
#[test]
fn degraded_dropout_matches_from_scratch_n_minus_1() {
    let mesh = Mesh::new(24, 12);
    let members = 6;
    let h = harness_labeled("fault-nminus1", mesh, members, 101, 1);
    let radius = LocalizationRadius { xi: 1, eta: 1 };
    let setup = AssimilationSetup {
        store: &h.store,
        members,
        observations: &h.scenario.observations,
        analysis: LocalAnalysis::new(radius),
    };

    // From-scratch N−1 reference: same files, same observation values,
    // perturbations rebuilt for 5 members from the same seed.
    let reduced = h.scenario.observations.with_members(members - 1);
    let ref_setup = AssimilationSetup {
        store: &h.store,
        members: members - 1,
        observations: &reduced,
        analysis: LocalAnalysis::new(radius),
    };
    let (reference, _) = PEnkf { nsdx: 2, nsdy: 2 }.run(&ref_setup).unwrap();

    let cfg = FaultConfig::degraded(FaultPlan::new(9).with_unrecoverable_member(members - 1))
        .with_retry(fast_retry());

    let (p, rep, _, log) = PEnkf { nsdx: 2, nsdy: 2 }
        .run_faulted(&setup, &cfg)
        .unwrap();
    assert_eq!(rep.dropped_members, vec![members - 1]);
    assert_eq!(p.states(), reference.states(), "P-EnKF N−1 not bit-exact");
    assert!(log
        .records()
        .iter()
        .any(|r| r.event == FaultEvent::MemberDropped && r.member == Some(members - 1)));

    let (l, rep, _, _) = LEnkf { nsdx: 2, nsdy: 2 }
        .run_faulted(&setup, &cfg)
        .unwrap();
    assert_eq!(rep.dropped_members, vec![members - 1]);
    assert_eq!(l.states(), reference.states(), "L-EnKF N−1 not bit-exact");

    let (s, rep, _, _) = SEnkf::new(SENKF).run_faulted(&setup, &cfg).unwrap();
    assert_eq!(rep.dropped_members, vec![members - 1]);
    assert_eq!(s.states(), reference.states(), "S-EnKF N−1 not bit-exact");
}

/// Dropping a *middle* member has no from-scratch equivalent (the RNG
/// streams are not prefix-closed under interior deletion), but all three
/// variants must still agree with each other exactly and report the same
/// dropout set.
#[test]
fn degraded_dropout_agrees_across_variants() {
    let mesh = Mesh::new(16, 8);
    let members = 6;
    let h = harness_labeled("fault-middle", mesh, members, 77, 1);
    let setup = AssimilationSetup {
        store: &h.store,
        members,
        observations: &h.scenario.observations,
        analysis: LocalAnalysis::new(LocalizationRadius { xi: 1, eta: 1 }),
    };
    let cfg = FaultConfig::degraded(FaultPlan::new(3).with_unrecoverable_member(2))
        .with_retry(fast_retry());

    let (p, prep, _, _) = PEnkf { nsdx: 2, nsdy: 2 }
        .run_faulted(&setup, &cfg)
        .unwrap();
    let (l, lrep, _, _) = LEnkf { nsdx: 2, nsdy: 2 }
        .run_faulted(&setup, &cfg)
        .unwrap();
    let (s, srep, _, _) = SEnkf::new(SENKF).run_faulted(&setup, &cfg).unwrap();
    assert_eq!(prep.dropped_members, vec![2]);
    assert_eq!(lrep.dropped_members, vec![2]);
    assert_eq!(srep.dropped_members, vec![2]);
    assert_eq!(p.states(), l.states(), "P vs L degraded divergence");
    assert_eq!(p.states(), s.states(), "P vs S degraded divergence");
}

/// Without degraded mode, an unrecoverable member is a typed error on
/// every variant — never a panic, deadlock, or silent wrong answer.
#[test]
fn unrecoverable_without_degraded_is_a_typed_error() {
    let mesh = Mesh::new(16, 8);
    let members = 4;
    let h = harness_labeled("fault-strict", mesh, members, 11, 1);
    let setup = AssimilationSetup {
        store: &h.store,
        members,
        observations: &h.scenario.observations,
        analysis: LocalAnalysis::new(LocalizationRadius { xi: 1, eta: 1 }),
    };
    let mut cfg = FaultConfig::degraded(FaultPlan::new(5).with_unrecoverable_member(1))
        .with_retry(fast_retry());
    cfg.degraded = false;

    for res in [
        PEnkf { nsdx: 2, nsdy: 2 }
            .run_faulted(&setup, &cfg)
            .map(|_| ()),
        LEnkf { nsdx: 2, nsdy: 2 }
            .run_faulted(&setup, &cfg)
            .map(|_| ()),
        SEnkf::new(SENKF).run_faulted(&setup, &cfg).map(|_| ()),
    ] {
        match res {
            Err(EnkfError::Substrate(SubstrateError::Unrecoverable { members })) => {
                assert_eq!(members, vec![1]);
            }
            other => panic!("expected Unrecoverable, got {other:?}"),
        }
    }
}

/// A read that fails twice and recovers on the third attempt must leave
/// the analysis bit-identical to the fault-free run; the evidence lives in
/// the fault log (2 injected, 2 backoffs, 1 recovery — L-EnKF's single
/// reader touches each file exactly once) and in the trace's fault spans.
#[test]
fn recoverable_fault_is_invisible_in_the_analysis() {
    let mesh = Mesh::new(16, 8);
    let members = 4;
    let h = harness_labeled("fault-recover", mesh, members, 21, 1);
    let setup = AssimilationSetup {
        store: &h.store,
        members,
        observations: &h.scenario.observations,
        analysis: LocalAnalysis::new(LocalizationRadius { xi: 1, eta: 1 }),
    };
    let (clean, _, _) = LEnkf { nsdx: 2, nsdy: 2 }.run_traced(&setup).unwrap();

    let mut cfg =
        FaultConfig::degraded(FaultPlan::new(13).with_read_fault(1, 2)).with_retry(fast_retry());
    cfg.degraded = false; // nothing unrecoverable in the plan
    let (faulted, report, trace, log) = LEnkf { nsdx: 2, nsdy: 2 }
        .run_faulted(&setup, &cfg)
        .unwrap();

    assert_eq!(
        faulted.states(),
        clean.states(),
        "recovery changed numerics"
    );
    assert!(report.dropped_members.is_empty());

    let count = |ev: FaultEvent| log.records().iter().filter(|r| r.event == ev).count();
    assert_eq!(count(FaultEvent::ReadFaultInjected), 2);
    assert_eq!(count(FaultEvent::RetryBackoff), 2);
    assert_eq!(count(FaultEvent::ReadRecovered), 1);

    let fault_spans = trace.spans().iter().filter(|s| s.op == Op::Fault).count();
    assert_eq!(fault_spans, 4, "2 failed attempts + 2 backoffs as spans");
    assert!(
        report.compute_ranks.fault > 0.0,
        "fault time must surface in the phase breakdown"
    );
}

/// An injected fault deeper than the retry budget is known unrecoverable
/// *before* the run starts (the dropout decision is a pure function of the
/// plan), so it surfaces as `Unrecoverable` — not as a mid-run exhaustion.
#[test]
fn over_budget_injected_fault_is_unrecoverable_up_front() {
    let mesh = Mesh::new(8, 8);
    let members = 4;
    let h = harness_labeled("fault-budget", mesh, members, 33, 1);
    let setup = AssimilationSetup {
        store: &h.store,
        members,
        observations: &h.scenario.observations,
        analysis: LocalAnalysis::new(LocalizationRadius { xi: 1, eta: 1 }),
    };
    let mut cfg =
        FaultConfig::degraded(FaultPlan::new(1).with_read_fault(0, 99)).with_retry(RetryPolicy {
            max_retries: 1,
            base_backoff: 1e-6,
            multiplier: 2.0,
            ..RetryPolicy::default()
        });
    cfg.degraded = false;
    match (PEnkf { nsdx: 2, nsdy: 2 }).run_faulted(&setup, &cfg) {
        Err(EnkfError::Substrate(SubstrateError::Unrecoverable { members })) => {
            assert_eq!(members, vec![0]);
        }
        other => panic!("expected Unrecoverable, got {:?}", other.map(|_| ())),
    }
}

/// A *genuine* I/O failure (the file is gone — something no plan predicted)
/// exhausts the retry budget and surfaces the member identity and the last
/// real cause through the typed error chain.
#[test]
fn exhausted_retries_surface_the_cause() {
    let mesh = Mesh::new(8, 8);
    let members = 3;
    let h = harness_labeled("fault-exhaust", mesh, members, 34, 1);
    std::fs::remove_file(h.store.member_path(0)).unwrap();
    let setup = AssimilationSetup {
        store: &h.store,
        members,
        observations: &h.scenario.observations,
        analysis: LocalAnalysis::new(LocalizationRadius { xi: 1, eta: 1 }),
    };
    let cfg = FaultConfig::none().with_retry(RetryPolicy {
        max_retries: 1,
        base_backoff: 1e-6,
        multiplier: 2.0,
        ..RetryPolicy::default()
    });
    match (PEnkf { nsdx: 2, nsdy: 2 }).run_faulted(&setup, &cfg) {
        Err(EnkfError::Substrate(SubstrateError::RetriesExhausted {
            member,
            attempts,
            cause,
        })) => {
            assert_eq!(member, 0);
            assert_eq!(attempts, 2);
            assert!(cause.is_some(), "the last real ReadError must be carried");
        }
        other => panic!("expected RetriesExhausted, got {:?}", other.map(|_| ())),
    }
}
