//! Counting-allocator proof that the steady-state data-plane paths
//! perform no (payload) heap allocation.
//!
//! Two pinned guarantees:
//!
//! * The read → scatter → analyze cycle: one warm cycle fills the store's
//!   buffer pool (byte buffers, `f64` slabs), the open-file-handle cache,
//!   and the analysis workspace high-water marks; a second identical cycle
//!   must then complete without a single call into the global allocator.
//! * The checkpoint encode → durable-write sweep
//!   ([`s_enkf::ckpt::MemberEncoder`]): the member column gather and the
//!   f64 → LE byte image are pooled, so a steady-state sweep performs no
//!   payload-sized allocation — only the handful of small path strings the
//!   temp + rename protocol inherently builds per file.
//!
//! The allocator tracks calls, bytes, and the largest single request so
//! the second guarantee can be stated precisely: "no allocation as large
//! as a member payload, and total bytes far below the payload swept".

use s_enkf::core::{
    Ensemble, LetkfAnalysis, LetkfWorkspace, LocalObsIndex, ObservationOperator, Observations,
    PerturbedObservations,
};
use s_enkf::grid::{FileLayout, LocalizationRadius, Mesh, ObservationNetwork, RegionRect};
use s_enkf::linalg::Matrix;
use s_enkf::pfs::{FileStore, RegionData, ScratchDir};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// System allocator wrapper counting every allocation-side call, the
/// bytes it requested, and the largest single request.
struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);
static BYTES: AtomicUsize = AtomicUsize::new(0);
static LARGEST: AtomicUsize = AtomicUsize::new(0);

/// The counters are process-global, so tests that assert on deltas must
/// not overlap with each other's allocations.
static EXCLUSIVE: Mutex<()> = Mutex::new(());

fn count(size: usize) {
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    BYTES.fetch_add(size, Ordering::Relaxed);
    LARGEST.fetch_max(size, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One steady-state assimilation cycle over pre-sized buffers: read every
/// member's bar, split it into block views (O(1) extracts), scatter the
/// surface values into the preallocated `X̄ᵇ`, then run the pointwise
/// analysis loop into a caller-owned row. Returns a checksum so nothing is
/// optimized away.
#[allow(clippy::too_many_arguments)]
fn cycle(
    store: &FileStore,
    members: usize,
    bar: &RegionRect,
    blocks: &[RegionRect],
    mesh: Mesh,
    states: &mut Matrix,
    views: &mut Vec<RegionData>,
    analysis: &LetkfAnalysis,
    obs: &s_enkf::core::LocalObservations,
    index: &LocalObsIndex,
    ws: &mut LetkfWorkspace,
    out_row: &mut [f64],
) -> f64 {
    // Read phase: one bar per member through the pooled path.
    for k in 0..members {
        let data = store.read_region(k, bar).unwrap();
        // Scatter phase: per-block views sharing the bar's slab, exactly
        // what an I/O rank fans out to its compute peers.
        for block in blocks {
            views.push(data.extract(block));
        }
        for (b, view) in views.drain(..).enumerate() {
            debug_assert!(view.shares_backing(&data), "scatter must be zero-copy");
            let block = &blocks[b];
            let mut local = 0;
            for iy in block.y0..block.y1 {
                let row = view.row(iy - block.y0);
                for (dx, &v) in row.iter().enumerate() {
                    let flat = iy * mesh.nx() + block.x0 + dx;
                    states[(flat, k)] = v;
                    local += 1;
                }
            }
            debug_assert_eq!(local, block.npoints());
        }
    }
    // Analyze phase: the PR 2 allocation-free pointwise loop.
    let full = RegionRect::full(mesh);
    let mut checksum = 0.0;
    for p in bar.iter_points() {
        analysis
            .analyze_point_into(mesh, p, &full, states, obs, index, ws, out_row)
            .unwrap();
        checksum += out_row[0];
    }
    checksum
}

#[test]
fn read_scatter_analyze_cycle_is_allocation_free_at_steady_state() {
    let _x = EXCLUSIVE.lock().unwrap();
    let mesh = Mesh::new(16, 8);
    let members = 6;
    let radius = LocalizationRadius { xi: 2, eta: 2 };
    let scratch = ScratchDir::new("dataplane-alloc").unwrap();
    let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 8)).unwrap();
    for k in 0..members {
        let v: Vec<f64> = (0..mesh.n())
            .map(|i| ((i + 3 * k) as f64 * 0.37).sin())
            .collect();
        store.write_member(k, &v).unwrap();
    }

    let net = ObservationNetwork::uniform(mesh, 3);
    let op = ObservationOperator::new(net);
    let m = op.len();
    let values: Vec<f64> = (0..m).map(|k| (k as f64 * 0.23).cos()).collect();
    let observations = Observations::new(
        op,
        values,
        vec![0.1; m],
        PerturbedObservations::new(0x5EED, members),
    );
    observations.prepare();

    // Full-width bar (single-seek read) split into two sub-domain blocks.
    let bar = RegionRect::new(0, 16, 2, 6);
    let blocks = [RegionRect::new(0, 8, 2, 6), RegionRect::new(8, 16, 2, 6)];
    let full = RegionRect::full(mesh);
    let obs = observations.localize(&full);
    let analysis = LetkfAnalysis::new(radius);
    let cell = radius.xi.max(radius.eta).max(1);
    let index = LocalObsIndex::build(&obs, &full, cell);
    let mut states = Matrix::zeros(mesh.n(), members);
    let mut views: Vec<RegionData> = Vec::with_capacity(blocks.len());
    let mut ws = LetkfWorkspace::new();
    let mut out_row = vec![0.0; members];

    // Warm cycle: pool slabs, byte buffers, file handles and workspace
    // buffers all reach their steady-state capacity.
    let warm = cycle(
        &store,
        members,
        &bar,
        &blocks,
        mesh,
        &mut states,
        &mut views,
        &analysis,
        &obs,
        &index,
        &mut ws,
        &mut out_row,
    );
    assert!(warm.is_finite());

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let steady = cycle(
        &store,
        members,
        &bar,
        &blocks,
        mesh,
        &mut states,
        &mut views,
        &analysis,
        &obs,
        &index,
        &mut ws,
        &mut out_row,
    );
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(steady, warm, "cycles are deterministic");
    assert_eq!(
        after - before,
        0,
        "steady-state read→scatter→analyze cycle allocated {} times",
        after - before
    );
}

/// One checkpoint sweep: encode every member's column through the pooled
/// [`s_enkf::ckpt::MemberEncoder`] path and write it durably. Returns the
/// member checksums so nothing is optimized away.
fn ckpt_sweep(
    enc: &mut s_enkf::ckpt::MemberEncoder,
    store: &FileStore,
    ensemble: &Ensemble,
    crcs: &mut Vec<u64>,
) {
    crcs.clear();
    for k in 0..ensemble.size() {
        crcs.push(enc.write_durable(store, ensemble, k).unwrap());
    }
}

/// The steady-state checkpoint write path performs no payload-sized
/// allocation: the column gather buffer and the little-endian byte image
/// are recycled through the encoder and the store's pool. What remains is
/// the temp + rename protocol's small per-file path strings — bounded to
/// a sliver of the payload and never one allocation as large as a member.
#[test]
fn checkpoint_member_writes_are_payload_allocation_free_at_steady_state() {
    let _x = EXCLUSIVE.lock().unwrap();
    let mesh = Mesh::new(16, 8);
    let members = 6;
    let scratch = ScratchDir::new("ckpt-alloc").unwrap();
    let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 8)).unwrap();
    let ensemble = Ensemble::new(
        mesh,
        Matrix::from_fn(mesh.n(), members, |i, k| {
            ((i * 7 + k * 3) as f64 * 0.13).sin()
        }),
    );
    let payload_per_member = 8 * mesh.n();

    let mut enc = s_enkf::ckpt::MemberEncoder::new();
    let mut warm_crcs = Vec::with_capacity(members);
    let mut steady_crcs = Vec::with_capacity(members);
    // Warm sweep: the encoder's column buffer and the pool's byte buffer
    // reach member-payload capacity.
    ckpt_sweep(&mut enc, &store, &ensemble, &mut warm_crcs);

    let (calls0, bytes0) = (
        ALLOCATIONS.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    );
    LARGEST.store(0, Ordering::Relaxed);
    ckpt_sweep(&mut enc, &store, &ensemble, &mut steady_crcs);
    let calls = ALLOCATIONS.load(Ordering::Relaxed) - calls0;
    let bytes = BYTES.load(Ordering::Relaxed) - bytes0;
    let largest = LARGEST.load(Ordering::Relaxed);

    assert_eq!(steady_crcs, warm_crcs, "sweeps are deterministic");
    assert!(
        largest < payload_per_member,
        "a payload-sized allocation ({largest} B >= {payload_per_member} B) leaked into the \
         steady-state checkpoint write path"
    );
    assert!(
        bytes < members * 512,
        "steady-state checkpoint sweep allocated {bytes} B for {} B of payload \
         (want only small path strings, < {} B)",
        members * payload_per_member,
        members * 512
    );
    assert!(
        calls <= members * 16,
        "steady-state checkpoint sweep allocated {calls} times"
    );
}
