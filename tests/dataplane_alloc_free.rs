//! Counting-allocator proof that the steady-state read → scatter → analyze
//! cycle performs no heap allocation.
//!
//! One warm cycle fills the store's buffer pool (byte buffers, `f64`
//! slabs), the open-file-handle cache, and the analysis workspace
//! high-water marks; a second identical cycle must then complete without a
//! single call into the global allocator — the data-plane guarantee the
//! zero-copy refactor exists to provide.

use s_enkf::core::{
    LetkfAnalysis, LetkfWorkspace, LocalObsIndex, ObservationOperator, Observations,
    PerturbedObservations,
};
use s_enkf::grid::{FileLayout, LocalizationRadius, Mesh, ObservationNetwork, RegionRect};
use s_enkf::linalg::Matrix;
use s_enkf::pfs::{FileStore, RegionData, ScratchDir};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// System allocator wrapper counting every allocation-side call.
struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One steady-state assimilation cycle over pre-sized buffers: read every
/// member's bar, split it into block views (O(1) extracts), scatter the
/// surface values into the preallocated `X̄ᵇ`, then run the pointwise
/// analysis loop into a caller-owned row. Returns a checksum so nothing is
/// optimized away.
#[allow(clippy::too_many_arguments)]
fn cycle(
    store: &FileStore,
    members: usize,
    bar: &RegionRect,
    blocks: &[RegionRect],
    mesh: Mesh,
    states: &mut Matrix,
    views: &mut Vec<RegionData>,
    analysis: &LetkfAnalysis,
    obs: &s_enkf::core::LocalObservations,
    index: &LocalObsIndex,
    ws: &mut LetkfWorkspace,
    out_row: &mut [f64],
) -> f64 {
    // Read phase: one bar per member through the pooled path.
    for k in 0..members {
        let data = store.read_region(k, bar).unwrap();
        // Scatter phase: per-block views sharing the bar's slab, exactly
        // what an I/O rank fans out to its compute peers.
        for block in blocks {
            views.push(data.extract(block));
        }
        for (b, view) in views.drain(..).enumerate() {
            debug_assert!(view.shares_backing(&data), "scatter must be zero-copy");
            let block = &blocks[b];
            let mut local = 0;
            for iy in block.y0..block.y1 {
                let row = view.row(iy - block.y0);
                for (dx, &v) in row.iter().enumerate() {
                    let flat = iy * mesh.nx() + block.x0 + dx;
                    states[(flat, k)] = v;
                    local += 1;
                }
            }
            debug_assert_eq!(local, block.npoints());
        }
    }
    // Analyze phase: the PR 2 allocation-free pointwise loop.
    let full = RegionRect::full(mesh);
    let mut checksum = 0.0;
    for p in bar.iter_points() {
        analysis
            .analyze_point_into(mesh, p, &full, states, obs, index, ws, out_row)
            .unwrap();
        checksum += out_row[0];
    }
    checksum
}

#[test]
fn read_scatter_analyze_cycle_is_allocation_free_at_steady_state() {
    let mesh = Mesh::new(16, 8);
    let members = 6;
    let radius = LocalizationRadius { xi: 2, eta: 2 };
    let scratch = ScratchDir::new("dataplane-alloc").unwrap();
    let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 8)).unwrap();
    for k in 0..members {
        let v: Vec<f64> = (0..mesh.n())
            .map(|i| ((i + 3 * k) as f64 * 0.37).sin())
            .collect();
        store.write_member(k, &v).unwrap();
    }

    let net = ObservationNetwork::uniform(mesh, 3);
    let op = ObservationOperator::new(net);
    let m = op.len();
    let values: Vec<f64> = (0..m).map(|k| (k as f64 * 0.23).cos()).collect();
    let observations = Observations::new(
        op,
        values,
        vec![0.1; m],
        PerturbedObservations::new(0x5EED, members),
    );
    observations.prepare();

    // Full-width bar (single-seek read) split into two sub-domain blocks.
    let bar = RegionRect::new(0, 16, 2, 6);
    let blocks = [RegionRect::new(0, 8, 2, 6), RegionRect::new(8, 16, 2, 6)];
    let full = RegionRect::full(mesh);
    let obs = observations.localize(&full);
    let analysis = LetkfAnalysis::new(radius);
    let cell = radius.xi.max(radius.eta).max(1);
    let index = LocalObsIndex::build(&obs, &full, cell);
    let mut states = Matrix::zeros(mesh.n(), members);
    let mut views: Vec<RegionData> = Vec::with_capacity(blocks.len());
    let mut ws = LetkfWorkspace::new();
    let mut out_row = vec![0.0; members];

    // Warm cycle: pool slabs, byte buffers, file handles and workspace
    // buffers all reach their steady-state capacity.
    let warm = cycle(
        &store,
        members,
        &bar,
        &blocks,
        mesh,
        &mut states,
        &mut views,
        &analysis,
        &obs,
        &index,
        &mut ws,
        &mut out_row,
    );
    assert!(warm.is_finite());

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let steady = cycle(
        &store,
        members,
        &bar,
        &blocks,
        mesh,
        &mut states,
        &mut views,
        &analysis,
        &obs,
        &index,
        &mut ws,
        &mut out_row,
    );
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(steady, warm, "cycles are deterministic");
    assert_eq!(
        after - before,
        0,
        "steady-state read→scatter→analyze cycle allocated {} times",
        after - before
    );
}
