//! Integration between the closed-form cost model (`enkf-tuning`), the
//! discrete-event substrate (`enkf-sim` + `enkf-pfs` + `enkf-net`), and the
//! planners (`enkf-parallel::model`): the modeled executors must reproduce
//! the relationships the paper's evaluation relies on.

use s_enkf::parallel::model::penkf::model_penkf;
use s_enkf::parallel::model::reading::{model_block_read, model_concurrent_read};
use s_enkf::parallel::model::senkf::model_senkf;
use s_enkf::parallel::ModelConfig;
use s_enkf::tuning::{autotune, Params, Workload};

fn small_cfg() -> ModelConfig {
    ModelConfig {
        workload: Workload {
            nx: 360,
            ny: 180,
            members: 12,
            h: 80,
            xi: 2,
            eta: 2,
        },
        ..ModelConfig::paper()
    }
}

#[test]
fn senkf_beats_penkf_when_reads_dominate() {
    let cfg = small_cfg();
    let p = model_penkf(&cfg, 36, 18).unwrap();
    let s = model_senkf(
        &cfg,
        Params {
            nsdx: 36,
            nsdy: 18,
            layers: 2,
            ncg: 4,
        },
    )
    .unwrap();
    assert!(
        s.makespan < p.makespan,
        "S {} vs P {}",
        s.makespan,
        p.makespan
    );
}

#[test]
fn des_makespan_tracks_closed_form_total_at_tuned_params() {
    // The paper's Figure 12 claim, end to end: the analytic T_total and the
    // DES makespan agree (within a modest factor) at the tuned parameters.
    let cfg = small_cfg();
    let cost = cfg.cost_params();
    let tuned = autotune(&cost, 800, 2e-2).expect("tunable");
    let out = model_senkf(&cfg, tuned.params).unwrap();
    let ratio = out.makespan / tuned.t_total;
    assert!(
        (0.5..2.0).contains(&ratio),
        "DES {} vs model {} (ratio {ratio})",
        out.makespan,
        tuned.t_total
    );
}

#[test]
fn block_reading_scales_with_longitudinal_subdivisions() {
    // Figure 5's premise at small scale: seeks grow with n_sdx.
    let cfg = small_cfg();
    let t10 = model_block_read(&cfg, 10, 6, 12).unwrap();
    let t20 = model_block_read(&cfg, 20, 6, 12).unwrap();
    let t40 = model_block_read(&cfg, 40, 6, 12).unwrap();
    assert!(t10 < t20 && t20 < t40);
    // Roughly linear: quadrupling n_sdx should not be sub-2x.
    assert!(t40 / t10 > 2.0, "t40/t10 = {}", t40 / t10);
}

#[test]
fn concurrent_groups_saturate_at_ost_count() {
    let cfg = small_cfg();
    let t1 = model_concurrent_read(&cfg, 6, 1, 12).unwrap();
    let t6 = model_concurrent_read(&cfg, 6, 6, 12).unwrap();
    let t12 = model_concurrent_read(&cfg, 6, 12, 12).unwrap();
    assert!(t6 < t1, "groups must help before saturation");
    // Past the OST count, no meaningful further gain.
    assert!(t12 > t6 * 0.7, "t12 {} vs t6 {}", t12, t6);
}

#[test]
fn penkf_io_share_grows_with_ranks() {
    // Figure 1's shape at small scale.
    let cfg = small_cfg();
    let share = |nsdx: usize, nsdy: usize| {
        let out = model_penkf(&cfg, nsdx, nsdy).unwrap();
        let m = out.compute_mean;
        let io = m.read + m.comm + m.wait;
        io / (io + m.compute)
    };
    let small = share(12, 6);
    let large = share(36, 18);
    assert!(large > small, "io share {small} -> {large}");
}

#[test]
fn overlap_fraction_is_sustained_across_scales() {
    // Figure 11's shape: overlapped share stays high as ranks grow.
    let cfg = small_cfg();
    let a = model_senkf(
        &cfg,
        Params {
            nsdx: 12,
            nsdy: 6,
            layers: 3,
            ncg: 2,
        },
    )
    .unwrap();
    let b = model_senkf(
        &cfg,
        Params {
            nsdx: 36,
            nsdy: 18,
            layers: 2,
            ncg: 4,
        },
    )
    .unwrap();
    assert!(
        a.overlapped_fraction() > 0.5,
        "small: {}",
        a.overlapped_fraction()
    );
    assert!(
        b.overlapped_fraction() > 0.5,
        "large: {}",
        b.overlapped_fraction()
    );
}

#[test]
fn autotuned_configuration_is_competitive_on_the_des() {
    // The tuner's pick should beat a deliberately poor hand-picked
    // configuration of the same budget class.
    let cfg = small_cfg();
    let cost = cfg.cost_params();
    let np = 700;
    let tuned = autotune(&cost, np, 2e-2).expect("tunable");
    let good = model_senkf(&cfg, tuned.params).unwrap();
    // Poor choice: no layering, single group, skewed decomposition.
    let poor = model_senkf(
        &cfg,
        Params {
            nsdx: 120,
            nsdy: 5,
            layers: 1,
            ncg: 1,
        },
    )
    .unwrap();
    assert!(
        good.makespan < poor.makespan,
        "tuned {} vs poor {}",
        good.makespan,
        poor.makespan
    );
}
