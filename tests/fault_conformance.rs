//! Fault-path conformance between the real and modeled executors.
//!
//! Three properties pin the fault subsystem down:
//!
//! 1. **Zero-overhead**: with an empty plan, the faulted entry points are
//!    *the same program* as the plain traced ones — byte-identical
//!    operation digests on both executors.
//! 2. **Fault conformance**: under a seeded plan, the real executor and
//!    the DES model inject the same faults, retry on the same schedule,
//!    and drop the same members — equal trace digests *and* equal fault-log
//!    digests.
//! 3. **Virtual-time exactness**: in the model, backoff delays appear in
//!    virtual time exactly as the retry policy prescribes, and an injected
//!    failed attempt costs exactly one read service.

mod common;

use common::harness_labeled;
use s_enkf::core::LocalAnalysis;
use s_enkf::fault::{FaultConfig, FaultPlan, RetryPolicy};
use s_enkf::grid::{LocalizationRadius, Mesh};
use s_enkf::parallel::{
    model_penkf_faulted, model_penkf_traced, model_senkf_faulted, model_senkf_traced,
    AssimilationSetup, LEnkf, ModelConfig, PEnkf, SEnkf,
};
use s_enkf::trace::Op;
use s_enkf::tuning::{Params, Workload};

const MESH: (usize, usize) = (24, 12);
const MEMBERS: usize = 4;
const H: u64 = 8;
const RADIUS: LocalizationRadius = LocalizationRadius { xi: 1, eta: 1 };
const PENKF: (usize, usize) = (2, 2);
const SENKF: Params = Params {
    nsdx: 2,
    nsdy: 2,
    layers: 2,
    ncg: 2,
};

fn model_cfg() -> ModelConfig {
    let mut cfg = ModelConfig::paper();
    cfg.workload = Workload {
        nx: MESH.0,
        ny: MESH.1,
        members: MEMBERS,
        h: H,
        xi: RADIUS.xi,
        eta: RADIUS.eta,
    };
    cfg
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_retries: 3,
        base_backoff: 1e-6,
        multiplier: 2.0,
        ..RetryPolicy::default()
    }
}

/// A plan that exercises recoverable read faults, OST slowdown, a
/// straggler, and (in degraded mode) a member dropout.
fn seeded_plan() -> FaultPlan {
    FaultPlan::new(42)
        .with_read_fault(1, 2)
        .with_ost_slowdown(1, 3.0)
        .with_straggler(0, 1.5)
        .with_unrecoverable_member(3)
}

#[test]
fn empty_plan_is_byte_identical_to_the_plain_path() {
    let mesh = Mesh::new(MESH.0, MESH.1);
    let h = harness_labeled("conf-empty", mesh, MEMBERS, 42, 1);
    let setup = AssimilationSetup {
        store: &h.store,
        members: MEMBERS,
        observations: &h.scenario.observations,
        analysis: LocalAnalysis::new(RADIUS),
    };
    let none = FaultConfig::none();

    let (_, _, plain) = PEnkf {
        nsdx: PENKF.0,
        nsdy: PENKF.1,
    }
    .run_traced(&setup)
    .unwrap();
    let (_, _, faulted, log) = PEnkf {
        nsdx: PENKF.0,
        nsdy: PENKF.1,
    }
    .run_faulted(&setup, &none)
    .unwrap();
    assert_eq!(plain.digest(), faulted.digest(), "P-EnKF real");
    assert!(log.is_empty(), "no-fault run must log nothing");

    let (_, _, plain) = LEnkf {
        nsdx: PENKF.0,
        nsdy: PENKF.1,
    }
    .run_traced(&setup)
    .unwrap();
    let (_, _, faulted, _) = LEnkf {
        nsdx: PENKF.0,
        nsdy: PENKF.1,
    }
    .run_faulted(&setup, &none)
    .unwrap();
    assert_eq!(plain.digest(), faulted.digest(), "L-EnKF real");

    let (_, _, plain) = SEnkf::new(SENKF).run_traced(&setup).unwrap();
    let (_, _, faulted, _) = SEnkf::new(SENKF).run_faulted(&setup, &none).unwrap();
    assert_eq!(plain.digest(), faulted.digest(), "S-EnKF real");

    let cfg = model_cfg();
    let (_, plain) = model_penkf_traced(&cfg, PENKF.0, PENKF.1).unwrap();
    let (_, faulted, log) = model_penkf_faulted(&cfg, PENKF.0, PENKF.1, &none).unwrap();
    assert_eq!(plain.digest(), faulted.digest(), "P-EnKF model");
    assert!(log.is_empty());

    let (_, plain) = model_senkf_traced(&cfg, SENKF).unwrap();
    let (_, faulted, _) = model_senkf_faulted(&cfg, SENKF, &none).unwrap();
    assert_eq!(plain.digest(), faulted.digest(), "S-EnKF model");
}

#[test]
fn seeded_plan_conforms_across_executors_penkf() {
    let mesh = Mesh::new(MESH.0, MESH.1);
    let h = harness_labeled("conf-penkf", mesh, MEMBERS, 42, 1);
    let setup = AssimilationSetup {
        store: &h.store,
        members: MEMBERS,
        observations: &h.scenario.observations,
        analysis: LocalAnalysis::new(RADIUS),
    };
    let fcfg = FaultConfig::degraded(seeded_plan()).with_retry(fast_retry());

    let (_, report, real, real_log) = PEnkf {
        nsdx: PENKF.0,
        nsdy: PENKF.1,
    }
    .run_faulted(&setup, &fcfg)
    .unwrap();
    let (outcome, model, model_log) =
        model_penkf_faulted(&model_cfg(), PENKF.0, PENKF.1, &fcfg).unwrap();

    assert_eq!(report.dropped_members, vec![3]);
    assert_eq!(outcome.dropped_members, vec![3]);
    assert_eq!(
        real.digest(),
        model.digest(),
        "P-EnKF faulted operation digests diverge"
    );
    assert_eq!(
        real_log.digest(),
        model_log.digest(),
        "P-EnKF fault-event sequences diverge"
    );
}

#[test]
fn seeded_plan_conforms_across_executors_senkf() {
    let mesh = Mesh::new(MESH.0, MESH.1);
    let h = harness_labeled("conf-senkf", mesh, MEMBERS, 42, 1);
    let setup = AssimilationSetup {
        store: &h.store,
        members: MEMBERS,
        observations: &h.scenario.observations,
        analysis: LocalAnalysis::new(RADIUS),
    };
    let fcfg = FaultConfig::degraded(seeded_plan()).with_retry(fast_retry());

    let (_, report, real, real_log) = SEnkf::new(SENKF).run_faulted(&setup, &fcfg).unwrap();
    let (outcome, model, model_log) = model_senkf_faulted(&model_cfg(), SENKF, &fcfg).unwrap();

    assert_eq!(report.dropped_members, vec![3]);
    assert_eq!(outcome.dropped_members, vec![3]);
    assert_eq!(
        real.digest(),
        model.digest(),
        "S-EnKF faulted operation digests diverge"
    );
    assert_eq!(
        real_log.digest(),
        model_log.digest(),
        "S-EnKF fault-event sequences diverge"
    );
}

/// In the DES, injected faults occupy virtual time *exactly*: each backoff
/// span lasts exactly `retry.backoff(attempt)`, and each failed attempt
/// lasts exactly one read service of the same member (same f64s, not
/// approximately).
#[test]
fn model_backoff_delays_are_exact_in_virtual_time() {
    let retry = RetryPolicy {
        max_retries: 3,
        base_backoff: 0.25,
        multiplier: 2.0,
        ..RetryPolicy::default()
    };
    let mut fcfg = FaultConfig::degraded(FaultPlan::new(7).with_read_fault(0, 2));
    fcfg.degraded = false;
    fcfg.retry = retry;

    let (_, trace, _) = model_penkf_faulted(&model_cfg(), 1, 1, &fcfg).unwrap();
    let spans = trace.spans();

    let mut backoffs: Vec<f64> = spans
        .iter()
        .filter(|s| s.op == Op::Fault && s.bytes == 0)
        .map(|s| s.dur)
        .collect();
    backoffs.sort_by(f64::total_cmp);
    assert_eq!(backoffs, vec![retry.backoff(0), retry.backoff(1)]);

    let read_service = spans
        .iter()
        .find(|s| s.op == Op::Read && s.member == Some(0))
        .expect("member 0 is eventually read")
        .dur;
    let failed: Vec<f64> = spans
        .iter()
        .filter(|s| s.op == Op::Fault && s.bytes > 0)
        .map(|s| s.dur)
        .collect();
    assert_eq!(failed, vec![read_service, read_service]);
}

/// A crashed rank surfaces as a typed error on the real executor — peers
/// time out instead of blocking forever — and as an explicit refusal on
/// the model.
#[test]
fn crash_is_a_typed_error_not_a_deadlock() {
    let mesh = Mesh::new(MESH.0, MESH.1);
    let h = harness_labeled("conf-crash", mesh, MEMBERS, 42, 1);
    let setup = AssimilationSetup {
        store: &h.store,
        members: MEMBERS,
        observations: &h.scenario.observations,
        analysis: LocalAnalysis::new(RADIUS),
    };

    // L-EnKF: the single reader (rank 0) dies; scatter receivers time out.
    let mut fcfg = FaultConfig::degraded(FaultPlan::new(3).with_crash(0, 0));
    fcfg.recv_timeout = 0.2;
    assert!(
        LEnkf {
            nsdx: PENKF.0,
            nsdy: PENKF.1
        }
        .run_faulted(&setup, &fcfg)
        .is_err(),
        "L-EnKF with a crashed reader must error"
    );

    // S-EnKF: an I/O rank dies mid-pipeline; compute helpers time out.
    let io_rank = SENKF.nsdx * SENKF.nsdy; // first I/O rank follows the compute ranks
    let mut fcfg = FaultConfig::degraded(FaultPlan::new(3).with_crash(io_rank, 1));
    fcfg.recv_timeout = 0.2;
    assert!(
        SEnkf::new(SENKF).run_faulted(&setup, &fcfg).is_err(),
        "S-EnKF with a crashed I/O rank must error"
    );

    // The model refuses a crashing plan up front rather than modeling a hang.
    assert!(model_penkf_faulted(&model_cfg(), PENKF.0, PENKF.1, &fcfg).is_err());
    assert!(model_senkf_faulted(&model_cfg(), SENKF, &fcfg).is_err());
}

/// A dropped message surfaces as a receive timeout on the real executor.
#[test]
fn dropped_message_times_out_with_a_typed_error() {
    let mesh = Mesh::new(MESH.0, MESH.1);
    let h = harness_labeled("conf-drop", mesh, MEMBERS, 42, 1);
    let setup = AssimilationSetup {
        store: &h.store,
        members: MEMBERS,
        observations: &h.scenario.observations,
        analysis: LocalAnalysis::new(RADIUS),
    };
    let mut fcfg = FaultConfig::degraded(FaultPlan::new(4).with_msg_drop(0, 1));
    fcfg.recv_timeout = 0.2;
    assert!(
        LEnkf {
            nsdx: PENKF.0,
            nsdy: PENKF.1
        }
        .run_faulted(&setup, &fcfg)
        .is_err(),
        "L-EnKF with a dropped scatter message must error"
    );
    assert!(
        model_senkf_faulted(&model_cfg(), SENKF, &fcfg).is_err(),
        "the model refuses a message-dropping plan"
    );
}
