//! Property-based invariants of the execution-trace layer.

use proptest::prelude::*;
use s_enkf::parallel::model::penkf::model_penkf_traced;
use s_enkf::parallel::{ModelConfig, PhaseBreakdown};
use s_enkf::prelude::*;
use s_enkf::sim::{Kind, Simulation, Task};
use s_enkf::trace::Op;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every span a modeled run emits has a non-negative start and
    /// duration, and the per-rank span sums reproduce the report's phase
    /// breakdown (means × rank count) within 1e-9.
    #[test]
    fn model_spans_nonnegative_and_project_to_report(
        nsdx in 1usize..5,
        nsdy in 1usize..4,
        members in 1usize..6,
    ) {
        let mut cfg = ModelConfig::paper();
        cfg.workload = Workload { nx: 60, ny: 24, members, h: 8, xi: 1, eta: 1 };
        let (out, trace) = model_penkf_traced(&cfg, nsdx, nsdy).unwrap();
        for s in trace.spans() {
            prop_assert!(s.start >= 0.0, "negative start {}", s.start);
            prop_assert!(s.dur >= 0.0, "negative duration {}", s.dur);
        }
        let per_rank = trace.per_rank_phases();
        prop_assert_eq!(per_rank.len(), out.num_compute_ranks);
        let mut sum = PhaseBreakdown::default();
        for t in per_rank.values() {
            sum.merge(&PhaseBreakdown::from(*t));
        }
        let n = out.num_compute_ranks as f64;
        prop_assert!((sum.read - out.compute_mean.read * n).abs() < 1e-9);
        prop_assert!((sum.comm - out.compute_mean.comm * n).abs() < 1e-9);
        prop_assert!((sum.compute - out.compute_mean.compute * n).abs() < 1e-9);
        prop_assert!((sum.wait - out.compute_mean.wait * n).abs() < 1e-9);
        prop_assert!((sum.fault - out.compute_mean.fault * n).abs() < 1e-9);
    }

    /// `merge` is elementwise addition and `scaled` is elementwise
    /// multiplication, so the two commute: merge-then-scale equals
    /// scale-then-merge.
    #[test]
    fn breakdown_merge_and_scale_are_linear(
        a in (0.0f64..10.0, 0.0f64..10.0, 0.0f64..10.0, 0.0f64..10.0),
        b in (0.0f64..10.0, 0.0f64..10.0, 0.0f64..10.0, 0.0f64..10.0),
        factor in 0.0f64..4.0,
    ) {
        let pa = PhaseBreakdown { read: a.0, comm: a.1, compute: a.2, wait: a.3, fault: 0.0 };
        let pb = PhaseBreakdown { read: b.0, comm: b.1, compute: b.2, wait: b.3, fault: 0.0 };
        let mut merged = pa;
        merged.merge(&pb);
        let scaled_then_merged = {
            let mut m = pa.scaled(factor);
            m.merge(&pb.scaled(factor));
            m
        };
        let merged_then_scaled = merged.scaled(factor);
        prop_assert!((merged.total() - (pa.total() + pb.total())).abs() < 1e-9);
        prop_assert!(
            (scaled_then_merged.total() - merged_then_scaled.total()).abs() < 1e-9
        );
        prop_assert!((scaled_then_merged.read - merged_then_scaled.read).abs() < 1e-9);
        prop_assert!((scaled_then_merged.comm - merged_then_scaled.comm).abs() < 1e-9);
        prop_assert!(
            (scaled_then_merged.compute - merged_then_scaled.compute).abs() < 1e-9
        );
        prop_assert!((scaled_then_merged.wait - merged_then_scaled.wait).abs() < 1e-9);
    }

    /// Spans exported from a DES run never overlap on a capacity-1
    /// resource: the engine serializes its holders, and the trace must
    /// show that serialization.
    #[test]
    fn des_spans_never_overlap_on_capacity_one_resource(
        agents in 1usize..5,
        services in proptest::collection::vec((0usize..4, 0.01f64..2.0), 1..24),
    ) {
        let mut sim = Simulation::new();
        let ids = sim.add_agents(agents);
        let res = sim.add_resource(1);
        for (agent, service) in &services {
            sim.add_task(
                Task::new(ids[agent % agents], Kind::Read, *service)
                    .with_resources(vec![res]),
            )
            .unwrap();
        }
        sim.run().unwrap();
        let trace = sim.export_trace("cap1");
        let mut held: Vec<(f64, f64)> = trace
            .spans()
            .iter()
            .filter(|s| s.op != Op::Wait && s.res == Some(res.0))
            .map(|s| (s.start, s.start + s.dur))
            .collect();
        prop_assert_eq!(held.len(), services.len());
        held.sort_by(|x, y| x.0.total_cmp(&y.0));
        for w in held.windows(2) {
            prop_assert!(
                w[1].0 >= w[0].1 - 1e-9,
                "overlapping holders: [{}, {}] then [{}, {}]",
                w[0].0, w[0].1, w[1].0, w[1].1
            );
        }
    }
}
