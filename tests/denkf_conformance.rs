//! D-EnKF conformance: the distributed-array non-sequential executor
//! against its DES model, the fault plans, and the campaign supervisor.
//!
//! The same contract the other three executors carry:
//!
//! 1. **Digest identity** — on an empty fault plan the real executor and
//!    the DES model emit byte-identical operation digests (who reads which
//!    bytes with how many seeks, who sends how much to whom, who computes).
//! 2. **Fault conformance** — under a seeded degraded plan, both sides
//!    inject the same faults on the same schedule: equal trace digests and
//!    equal fault-log digests; the cycle completes on the N−1 survivors.
//! 3. **Typed failure** — crashes and exhausted retries surface as typed
//!    [`SubstrateError`] values, never panics or hangs.
//! 4. **Kill–resume bit-identity** — a D-EnKF campaign killed at a cycle
//!    boundary and resumed through `enkf-ckpt` reproduces the
//!    uninterrupted run bit for bit, and the real supervised campaign
//!    matches the campaign model's digest.

mod common;

use common::{harness_labeled, TenantMix};
use s_enkf::core::{BatchedKernel, EnkfError, LocalAnalysis};
use s_enkf::fault::{FaultConfig, FaultPlan, RetryPolicy, SubstrateError};
use s_enkf::grid::{LocalizationRadius, Mesh};
use s_enkf::parallel::{
    model_campaign, model_denkf_faulted, model_denkf_traced, run_campaign, AssimilationSetup,
    CampaignExecutor, CampaignModelPlan, DEnkf, ModelConfig, ModelVariant,
};
use s_enkf::tuning::Workload;

const MEMBERS: usize = 4;
const H: u64 = 8;

fn model_cfg(mesh: Mesh, members: usize) -> ModelConfig {
    let mut cfg = ModelConfig::paper();
    cfg.workload = Workload {
        nx: mesh.nx(),
        ny: mesh.ny(),
        members,
        h: H,
        xi: 1,
        eta: 1,
    };
    cfg
}

fn denkf(shards: usize) -> DEnkf {
    DEnkf {
        shards,
        kernel: BatchedKernel::ShermanMorrison,
    }
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_retries: 3,
        base_backoff: 1e-6,
        multiplier: 2.0,
        ..RetryPolicy::default()
    }
}

/// Real-vs-model digest identity on an empty plan, across geometries and
/// shard counts.
#[test]
fn real_and_modeled_digests_are_byte_identical() {
    for (mesh, members, shards, seed) in [
        (Mesh::new(24, 12), 4usize, 3usize, 42u64),
        (Mesh::new(24, 12), 4, 6, 42),
        (Mesh::new(30, 18), 6, 2, 7),
    ] {
        let h = harness_labeled("denkf-conf", mesh, members, seed, 1);
        let setup = AssimilationSetup {
            store: &h.store,
            members,
            observations: &h.scenario.observations,
            analysis: LocalAnalysis::new(LocalizationRadius { xi: 1, eta: 1 }),
        };
        let (_, _, real) = denkf(shards).run_traced(&setup).unwrap();
        let (_, model) = model_denkf_traced(&model_cfg(mesh, members), shards).unwrap();
        assert_eq!(
            real.digest(),
            model.digest(),
            "D-EnKF real/model digests diverge ({shards} shards on {mesh:?})"
        );
        // The faulted entry point with an empty plan is the same program.
        let (_, _, faulted, log) = denkf(shards)
            .run_faulted(&setup, &FaultConfig::none())
            .unwrap();
        assert_eq!(real.digest(), faulted.digest(), "empty plan must be free");
        assert!(log.is_empty());
    }
}

/// A seeded degraded plan: read faults, a straggler, an OST slowdown and a
/// dropped member — both sides inject identically and complete on N−1.
#[test]
fn degraded_plan_conforms_and_completes_on_survivors() {
    let mesh = Mesh::new(24, 12);
    let h = harness_labeled("denkf-degraded", mesh, MEMBERS, 42, 1);
    let setup = AssimilationSetup {
        store: &h.store,
        members: MEMBERS,
        observations: &h.scenario.observations,
        analysis: LocalAnalysis::new(LocalizationRadius { xi: 1, eta: 1 }),
    };
    let fcfg = FaultConfig {
        plan: FaultPlan::new(42)
            .with_read_fault(1, 2)
            .with_ost_slowdown(1, 3.0)
            .with_straggler(0, 1.5)
            .with_unrecoverable_member(3),
        retry: fast_retry(),
        degraded: true,
        recv_timeout: 5.0,
    };
    let (analysis, report, real, real_log) = denkf(3).run_faulted(&setup, &fcfg).unwrap();
    assert_eq!(analysis.size(), MEMBERS - 1, "one member dropped");
    assert_eq!(report.dropped_members, vec![3]);
    let (out, model, model_log) = model_denkf_faulted(&model_cfg(mesh, MEMBERS), 3, &fcfg).unwrap();
    assert_eq!(out.dropped_members, vec![3]);
    assert_eq!(
        real.digest(),
        model.digest(),
        "degraded trace digests diverge"
    );
    assert_eq!(
        real_log.digest(),
        model_log.digest(),
        "fault-log digests diverge"
    );
}

/// Failures are typed: an exhausted retry budget without degraded mode,
/// and a crashed rank whose peers time out.
#[test]
fn failures_surface_as_typed_errors() {
    let mesh = Mesh::new(24, 12);
    let h = harness_labeled("denkf-typed", mesh, MEMBERS, 42, 1);
    let setup = AssimilationSetup {
        store: &h.store,
        members: MEMBERS,
        observations: &h.scenario.observations,
        analysis: LocalAnalysis::new(LocalizationRadius { xi: 1, eta: 1 }),
    };

    let undegraded = FaultConfig {
        plan: FaultPlan::new(1).with_unrecoverable_member(2),
        retry: fast_retry(),
        degraded: false,
        recv_timeout: 5.0,
    };
    match denkf(2).run_faulted(&setup, &undegraded) {
        Err(EnkfError::Substrate(SubstrateError::Unrecoverable { members })) => {
            assert_eq!(members, vec![2])
        }
        other => panic!("expected typed Unrecoverable, got {other:?}"),
    }

    let crash = FaultConfig {
        plan: FaultPlan::new(2).with_crash(0, 0),
        retry: fast_retry(),
        degraded: false,
        recv_timeout: 0.2,
    };
    match denkf(2).run_faulted(&setup, &crash) {
        Err(EnkfError::Substrate(
            SubstrateError::RankCrashed { rank: 0, .. } | SubstrateError::RecvTimeout { .. },
        )) => {}
        other => panic!("expected typed crash/timeout, got {other:?}"),
    }
}

const CYCLES: usize = 3;

fn mix() -> TenantMix {
    TenantMix::small()
}

fn denkf_exec() -> CampaignExecutor {
    CampaignExecutor::DEnkf {
        shards: 4,
        kernel: BatchedKernel::ShermanMorrison,
    }
}

/// Kill–resume bit-identity through `enkf-ckpt`, on the D-EnKF executor.
#[test]
fn campaign_kill_resume_is_bit_identical() {
    let exec = denkf_exec();
    let (_s1, work1, ckpt1) = mix().stores("denkf-camp-full");
    let full = run_campaign(
        &work1,
        &ckpt1,
        &exec,
        &mix().campaign_cfg(CYCLES),
        &FaultConfig::none(),
    )
    .unwrap();
    assert_eq!(full.stats.len(), CYCLES);

    let (_s2, work2, ckpt2) = mix().stores("denkf-camp-killed");
    run_campaign(
        &work2,
        &ckpt2,
        &exec,
        &mix().campaign_cfg(2),
        &FaultConfig::none(),
    )
    .unwrap();
    let resumed = run_campaign(
        &work2,
        &ckpt2,
        &exec,
        &mix().campaign_cfg(CYCLES),
        &FaultConfig::none(),
    )
    .unwrap();
    assert_eq!(resumed.resumed_from, Some(2), "must resume, not restart");
    assert_eq!(resumed.stats, full.stats, "per-cycle statistics differ");
    assert_eq!(
        resumed.cycle_digests, full.cycle_digests,
        "per-cycle trace digests differ"
    );
    assert_eq!(
        resumed.final_analysis.states(),
        full.final_analysis.states(),
        "final ensembles differ"
    );
}

/// The real supervised D-EnKF campaign and the campaign DES model emit
/// byte-identical operation digests on an empty plan.
#[test]
fn campaign_real_and_model_digests_conform() {
    let exec = denkf_exec();
    let (_s, work, ckpt) = mix().stores("denkf-camp-conf");
    let real = run_campaign(
        &work,
        &ckpt,
        &exec,
        &mix().campaign_cfg(CYCLES),
        &FaultConfig::none(),
    )
    .unwrap();
    let plan = CampaignModelPlan {
        cycles: CYCLES,
        checkpoint: true,
        pipelined: false,
        restart: mix().campaign_cfg(CYCLES).restart,
    };
    let (_out, model_trace) = model_campaign(
        &mix().model_cfg(),
        &ModelVariant::DEnkf { shards: 4 },
        &plan,
        &FaultConfig::none(),
    )
    .unwrap();
    assert_eq!(
        real.trace.digest(),
        model_trace.digest(),
        "real and modeled D-EnKF campaign digests must be byte-identical"
    );
}

/// A mid-campaign rank crash recovers through the checkpoint store and the
/// recovered campaign is bit-identical to a never-faulted one.
#[test]
fn campaign_crash_recovery_is_bit_identical() {
    let exec = denkf_exec();
    let (_s1, work1, ckpt1) = mix().stores("denkf-camp-clean");
    let clean = run_campaign(
        &work1,
        &ckpt1,
        &exec,
        &mix().campaign_cfg(CYCLES),
        &FaultConfig::none(),
    )
    .unwrap();

    let mut fault = FaultConfig::none();
    fault.plan = FaultPlan::new(7).with_crash_at_cycle(0, 1, 0);
    fault.recv_timeout = 0.3;
    let (_s2, work2, ckpt2) = mix().stores("denkf-camp-crash");
    let recovered =
        run_campaign(&work2, &ckpt2, &exec, &mix().campaign_cfg(CYCLES), &fault).unwrap();
    assert_eq!(recovered.recoveries.len(), 1);
    assert_eq!(recovered.recoveries[0].cycle, 1);
    assert_eq!(recovered.stats, clean.stats);
    assert_eq!(recovered.cycle_digests, clean.cycle_digests);
    assert_eq!(
        recovered.final_analysis.states(),
        clean.final_analysis.states()
    );
}
