//! Campaign-level conformance: kill–resume determinism and real-vs-DES
//! agreement, in **both checkpoint-commit modes**.
//!
//! The headline invariant of the checkpoint/restart subsystem: a campaign
//! killed at any point — between cycles, mid-cycle via an injected crash,
//! or during a checkpoint commit — and resumed from disk produces
//! **bit-identical** final ensembles, per-cycle statistics, and per-cycle
//! trace-digest hashes to a campaign that was never interrupted. And on an
//! empty fault plan, the real supervised campaign and its DES model emit
//! byte-identical operation digests (cycle spans × K plus K+1 checkpoint
//! sets).
//!
//! Every invariant is exercised under [`CkptMode::Sync`] *and*
//! [`CkptMode::Pipelined`]: moving the checkpoint write to a background
//! thread must change only *when* durability happens, never *what* the
//! campaign computes — sync and pipelined runs of the same campaign are
//! report- and digest-identical, and a kill during an in-flight
//! asynchronous write falls back to the previous durable cycle.

mod common;

use common::{TenantMix, SENKF};
use proptest::prelude::*;
use s_enkf::ckpt::CheckpointStore;
use s_enkf::fault::{FaultConfig, FaultPlan, RetryPolicy};
use s_enkf::parallel::{
    model_campaign, run_campaign, run_campaign_ctx, BackoffClock, CampaignConfig, CampaignCtx,
    CampaignExecutor, CampaignModelPlan, CampaignReport, CkptMode, ModelConfig, ModelVariant,
};
use s_enkf::pfs::{FileStore, ScratchDir};

const CYCLES: usize = 3;

/// The shared small geometry — one definition, in the common harness.
fn mix() -> TenantMix {
    TenantMix::small()
}

fn campaign_cfg(cycles: usize) -> CampaignConfig {
    mix().campaign_cfg(cycles)
}

/// Fresh work + checkpoint stores under one scratch directory.
fn stores(label: &str) -> (ScratchDir, FileStore, CheckpointStore) {
    mix().stores(label)
}

fn executors() -> Vec<(&'static str, CampaignExecutor)> {
    vec![
        ("lenkf", CampaignExecutor::LEnkf { nsdx: 2, nsdy: 2 }),
        ("penkf", CampaignExecutor::PEnkf { nsdx: 2, nsdy: 2 }),
        ("senkf", CampaignExecutor::SEnkf(SENKF)),
        (
            "denkf",
            CampaignExecutor::DEnkf {
                shards: 4,
                kernel: s_enkf::core::BatchedKernel::Cholesky,
            },
        ),
    ]
}

fn modes() -> [(&'static str, CkptMode); 2] {
    [("sync", CkptMode::Sync), ("pipelined", CkptMode::Pipelined)]
}

/// Run a campaign under an explicit checkpoint-commit mode.
fn run_mode(
    work: &FileStore,
    ckpt: &CheckpointStore,
    exec: &CampaignExecutor,
    cfg: &CampaignConfig,
    fault: &FaultConfig,
    mode: CkptMode,
) -> CampaignReport {
    run_campaign_ctx(
        work,
        ckpt,
        exec,
        cfg,
        fault,
        &CampaignCtx {
            tenant: None,
            backoff: BackoffClock::Wall,
            ckpt_mode: mode,
            health: None,
        },
    )
    .unwrap()
}

fn assert_reports_identical(a: &CampaignReport, b: &CampaignReport, what: &str) {
    assert_eq!(a.stats, b.stats, "{what}: per-cycle statistics differ");
    assert_eq!(
        a.cycle_digests, b.cycle_digests,
        "{what}: per-cycle trace digests differ"
    );
    assert_eq!(
        a.final_analysis.states(),
        b.final_analysis.states(),
        "{what}: final ensembles differ"
    );
}

/// Pipelining is a *scheduling* change, not a semantic one: a pipelined
/// campaign is bit-identical to the synchronous one — same statistics,
/// same per-cycle digests, same final ensemble, and the same whole-trace
/// operation digest (the writer traces on a fork of the supervisor's
/// rank, so even the Ckpt span multiset matches). On all four executors.
#[test]
fn pipelined_campaign_is_bit_identical_to_sync() {
    for (name, exec) in executors() {
        let (_s1, work1, ckpt1) = stores(&format!("camp-mode-sync-{name}"));
        let sync = run_mode(
            &work1,
            &ckpt1,
            &exec,
            &campaign_cfg(CYCLES),
            &FaultConfig::none(),
            CkptMode::Sync,
        );
        let (_s2, work2, ckpt2) = stores(&format!("camp-mode-pipe-{name}"));
        let pipe = run_mode(
            &work2,
            &ckpt2,
            &exec,
            &campaign_cfg(CYCLES),
            &FaultConfig::none(),
            CkptMode::Pipelined,
        );
        assert_reports_identical(&sync, &pipe, name);
        assert_eq!(
            sync.trace.digest(),
            pipe.trace.digest(),
            "{name}: sync and pipelined trace digests must be byte-identical"
        );
    }
}

/// Killing a campaign at a cycle boundary (the process exits; all that
/// survives is the checkpoint directory) and resuming produces exactly
/// the uninterrupted run, on all four executors and both commit modes.
#[test]
fn kill_at_cycle_boundary_and_resume_is_bit_identical() {
    for (name, exec) in executors() {
        for (mname, mode) in modes() {
            let tag = format!("{name}-{mname}");
            let (_s1, work1, ckpt1) = stores(&format!("camp-full-{tag}"));
            let full = run_mode(
                &work1,
                &ckpt1,
                &exec,
                &campaign_cfg(CYCLES),
                &FaultConfig::none(),
                mode,
            );
            assert_eq!(full.stats.len(), CYCLES);
            assert_eq!(full.resumed_from, None);

            // "Kill" after 2 cycles: run a shorter campaign, drop every
            // in-memory object, and resume from the surviving directories.
            let (_s2, work2, ckpt2) = stores(&format!("camp-killed-{tag}"));
            let partial = run_mode(
                &work2,
                &ckpt2,
                &exec,
                &campaign_cfg(2),
                &FaultConfig::none(),
                mode,
            );
            assert_eq!(partial.stats.len(), 2);
            drop(partial);

            let resumed = run_mode(
                &work2,
                &ckpt2,
                &exec,
                &campaign_cfg(CYCLES),
                &FaultConfig::none(),
                mode,
            );
            assert_eq!(
                resumed.resumed_from,
                Some(2),
                "{tag}: must resume, not restart"
            );
            assert_reports_identical(&full, &resumed, &tag);
        }
    }
}

/// A rank crash mid-cycle tears the cycle down; the supervisor drains any
/// in-flight asynchronous write, restores the last durable checkpoint from
/// disk and re-runs. The recovered campaign is bit-identical to a
/// never-faulted one, in both commit modes.
#[test]
fn crash_recovery_is_bit_identical_to_uninterrupted() {
    for (name, exec) in executors() {
        for (mname, mode) in modes() {
            let tag = format!("{name}-{mname}");
            let (_s1, work1, ckpt1) = stores(&format!("camp-clean-{tag}"));
            let clean = run_mode(
                &work1,
                &ckpt1,
                &exec,
                &campaign_cfg(CYCLES),
                &FaultConfig::none(),
                mode,
            );

            let mut fault = FaultConfig::none();
            fault.plan = FaultPlan::new(7).with_crash_at_cycle(0, 1, 0);
            fault.recv_timeout = 0.3;
            let (_s2, work2, ckpt2) = stores(&format!("camp-crash-{tag}"));
            let recovered = run_mode(&work2, &ckpt2, &exec, &campaign_cfg(CYCLES), &fault, mode);
            assert_eq!(
                recovered.recoveries.len(),
                1,
                "{tag}: exactly one recovery for one injected crash"
            );
            assert_eq!(recovered.recoveries[0].cycle, 1);
            assert!(!recovered.recoveries[0].degraded);
            assert_reports_identical(&clean, &recovered, &tag);
        }
    }
}

// Kill at a *random* cycle (including before any cycle completes), then
// resume — possibly in the *other* commit mode, pinning that resumability
// is a property of the on-disk format alone. The CI smoke version runs a
// handful of random (kill point, mode, mode) combinations.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn kill_at_random_cycle_and_resume_smoke(
        kill_after in 0usize..CYCLES,
        kill_pipelined in any::<bool>(),
        resume_pipelined in any::<bool>(),
    ) {
        let mode_of = |p: bool| if p { CkptMode::Pipelined } else { CkptMode::Sync };
        let exec = CampaignExecutor::PEnkf { nsdx: 2, nsdy: 2 };
        let (_s1, work1, ckpt1) = stores("camp-rand-full");
        let full = run_campaign(
            &work1, &ckpt1, &exec, &campaign_cfg(CYCLES), &FaultConfig::none(),
        ).unwrap();

        let (_s2, work2, ckpt2) = stores("camp-rand-killed");
        if kill_after > 0 {
            run_mode(
                &work2, &ckpt2, &exec, &campaign_cfg(kill_after),
                &FaultConfig::none(), mode_of(kill_pipelined),
            );
        } else {
            // Kill before the first cycle ever ran: only the initial
            // (cycle 0) checkpoint may exist. Resume must cope with a
            // completely fresh directory too.
        }
        let resumed = run_mode(
            &work2, &ckpt2, &exec, &campaign_cfg(CYCLES),
            &FaultConfig::none(), mode_of(resume_pipelined),
        );
        prop_assert_eq!(&resumed.stats, &full.stats);
        prop_assert_eq!(&resumed.cycle_digests, &full.cycle_digests);
        prop_assert_eq!(resumed.final_analysis.states(), full.final_analysis.states());
    }
}

/// A checkpoint torn by a kill mid-commit (manifest never landed) is
/// skipped; resume falls back one cycle, re-runs it, and still converges
/// to the uninterrupted result.
#[test]
fn torn_checkpoint_on_kill_falls_back_one_cycle() {
    let exec = CampaignExecutor::PEnkf { nsdx: 2, nsdy: 2 };
    let (_s1, work1, ckpt1) = stores("camp-torn-full");
    let full = run_campaign(
        &work1,
        &ckpt1,
        &exec,
        &campaign_cfg(CYCLES),
        &FaultConfig::none(),
    )
    .unwrap();

    let (_s2, work2, ckpt2) = stores("camp-torn-killed");
    run_campaign(
        &work2,
        &ckpt2,
        &exec,
        &campaign_cfg(2),
        &FaultConfig::none(),
    )
    .unwrap();
    // The kill hit between cycle 2's member writes and its manifest
    // commit: the checkpoint is present but not durable.
    std::fs::remove_file(ckpt2.cycle_dir(2).join("MANIFEST.txt")).unwrap();
    let resumed = run_campaign(
        &work2,
        &ckpt2,
        &exec,
        &campaign_cfg(CYCLES),
        &FaultConfig::none(),
    )
    .unwrap();
    assert_eq!(resumed.resumed_from, Some(1), "fallback to cycle 1");
    assert_reports_identical(&full, &resumed, "torn-checkpoint");
}

/// The pipelined analogue: the process dies while the *background writer*
/// is mid-commit on the final cycle — member payloads landed but the
/// manifest did not. The durable frontier is the previous cycle; a
/// resume (in either mode) falls back to it, re-runs the lost cycle, and
/// is bit-identical to the uninterrupted campaign. On all four executors.
#[test]
fn pipelined_torn_inflight_write_falls_back_to_previous_durable_cycle() {
    for (name, exec) in executors() {
        let (_s1, work1, ckpt1) = stores(&format!("camp-ptorn-full-{name}"));
        let full = run_mode(
            &work1,
            &ckpt1,
            &exec,
            &campaign_cfg(CYCLES),
            &FaultConfig::none(),
            CkptMode::Pipelined,
        );

        let (_s2, work2, ckpt2) = stores(&format!("camp-ptorn-killed-{name}"));
        run_mode(
            &work2,
            &ckpt2,
            &exec,
            &campaign_cfg(2),
            &FaultConfig::none(),
            CkptMode::Pipelined,
        );
        // Tear cycle 2's in-flight asynchronous commit: the kill landed
        // after the member writes but before the manifest rename.
        std::fs::remove_file(ckpt2.cycle_dir(2).join("MANIFEST.txt")).unwrap();
        let resumed = run_mode(
            &work2,
            &ckpt2,
            &exec,
            &campaign_cfg(CYCLES),
            &FaultConfig::none(),
            CkptMode::Pipelined,
        );
        assert_eq!(
            resumed.resumed_from,
            Some(1),
            "{name}: fallback to the previous durable cycle"
        );
        assert_reports_identical(&full, &resumed, name);
    }
}

/// A permanently lost member degrades the campaign to the N−1 path:
/// one budget-free recovery, then the ensemble continues on the
/// survivors for every remaining cycle.
#[test]
fn unrecoverable_member_degrades_to_n_minus_one() {
    let exec = CampaignExecutor::PEnkf { nsdx: 2, nsdy: 2 };
    let members = mix().members;
    let mut fault = FaultConfig::none();
    // The *last* member: after the ensemble shrinks, the index falls out
    // of range and cannot re-trigger.
    fault.plan = FaultPlan::new(3).with_unrecoverable_member(members - 1);
    fault.retry = RetryPolicy {
        max_retries: 1,
        base_backoff: 1e-6,
        multiplier: 2.0,
        ..RetryPolicy::default()
    };
    let (_s, work, ckpt) = stores("camp-degraded");
    let report = run_campaign(&work, &ckpt, &exec, &campaign_cfg(CYCLES), &fault).unwrap();
    assert!(report.degraded);
    assert_eq!(report.dropped_members, vec![members - 1]);
    assert_eq!(report.final_analysis.size(), members - 1);
    assert_eq!(report.stats.len(), CYCLES, "the campaign still completes");
    let deg: Vec<_> = report.recoveries.iter().filter(|r| r.degraded).collect();
    assert_eq!(deg.len(), 1, "one budget-free degradation recovery");
}

fn model_cfg() -> ModelConfig {
    mix().model_cfg()
}

/// On an empty fault plan, the real campaign and the DES campaign model
/// produce byte-identical operation digests: K identical cycle span sets
/// plus K+1 checkpoint sets on the supervisor rank — in both commit modes
/// (pipelining moves the Ckpt spans in *time*, which digests ignore).
#[test]
fn real_and_modeled_campaigns_conform_on_empty_plan() {
    let cases = [
        (
            "penkf",
            CampaignExecutor::PEnkf { nsdx: 2, nsdy: 2 },
            ModelVariant::PEnkf { nsdx: 2, nsdy: 2 },
        ),
        (
            "senkf",
            CampaignExecutor::SEnkf(SENKF),
            ModelVariant::SEnkf(SENKF),
        ),
    ];
    for (name, exec, variant) in cases {
        for (mname, mode) in modes() {
            let plan = CampaignModelPlan {
                cycles: CYCLES,
                checkpoint: true,
                pipelined: mode == CkptMode::Pipelined,
                restart: campaign_cfg(CYCLES).restart,
            };
            let (_s, work, ckpt) = stores(&format!("camp-conf-{name}-{mname}"));
            let real = run_mode(
                &work,
                &ckpt,
                &exec,
                &campaign_cfg(CYCLES),
                &FaultConfig::none(),
                mode,
            );
            let (_out, model_trace) =
                model_campaign(&model_cfg(), &variant, &plan, &FaultConfig::none()).unwrap();
            assert_eq!(
                real.trace.digest(),
                model_trace.digest(),
                "{name}/{mname}: real and modeled campaign digests must be byte-identical"
            );
        }
    }
}

/// The modeled no-checkpoint baseline: a late crash costs the whole
/// campaign, so checkpointing strictly reduces lost time.
#[test]
fn model_checkpointing_bounds_crash_loss() {
    let mut fault = FaultConfig::none();
    fault.plan = FaultPlan::new(1).with_crash_at_cycle(0, CYCLES - 1, 0);
    fault.recv_timeout = 0.3;
    let restart = campaign_cfg(CYCLES).restart;
    let variant = ModelVariant::PEnkf { nsdx: 2, nsdy: 2 };
    let with = CampaignModelPlan {
        cycles: CYCLES,
        checkpoint: true,
        pipelined: false,
        restart,
    };
    let without = CampaignModelPlan {
        checkpoint: false,
        ..with
    };
    let (out_with, _) = model_campaign(&model_cfg(), &variant, &with, &fault).unwrap();
    let (out_without, _) = model_campaign(&model_cfg(), &variant, &without, &fault).unwrap();
    assert_eq!(out_with.restarts, 1);
    assert_eq!(out_without.restarts, 1);
    assert!(
        out_without.lost_time > out_with.lost_time,
        "no recovery line must lose more virtual time ({} vs {})",
        out_without.lost_time,
        out_with.lost_time
    );
    // And a fault-free campaign without checkpoints is cheaper — the
    // checkpoint overhead itself is visible in the makespan.
    let none = FaultConfig::none();
    let (clean_with, _) = model_campaign(&model_cfg(), &variant, &with, &none).unwrap();
    let (clean_without, _) = model_campaign(&model_cfg(), &variant, &without, &none).unwrap();
    assert!(clean_without.makespan < clean_with.makespan);
    let expected = clean_without.makespan + (CYCLES + 1) as f64 * clean_with.checkpoint_time;
    assert!(
        (clean_with.makespan - expected).abs() < 1e-9,
        "checkpoint overhead must be exactly K+1 serial member sweeps ({} vs {expected})",
        clean_with.makespan
    );
}

/// The modeled pipelined campaign: overlap hides checkpoint time without
/// weakening the crash-loss bound.
///
/// * clean pipelined makespan < clean synchronous makespan (strictly —
///   the middle sweeps come off the critical path);
/// * hidden + exposed accounts for every checkpoint second ((K+1) sweeps);
/// * the trace-level interval accounting
///   ([`s_enkf::trace::Trace::ckpt_overlap`]) agrees that most checkpoint
///   time is hidden behind cycle work;
/// * under a crash, the pipelined campaign loses no more than the
///   synchronous one plus at most one sweep (the drained in-flight write).
#[test]
fn model_pipelined_overlap_cuts_exposed_checkpoint_time() {
    let restart = campaign_cfg(CYCLES).restart;
    let variant = ModelVariant::PEnkf { nsdx: 2, nsdy: 2 };
    let sync = CampaignModelPlan {
        cycles: CYCLES,
        checkpoint: true,
        pipelined: false,
        restart,
    };
    let pipe = CampaignModelPlan {
        pipelined: true,
        ..sync
    };
    let none = FaultConfig::none();
    let (s, _) = model_campaign(&model_cfg(), &variant, &sync, &none).unwrap();
    let (p, p_trace) = model_campaign(&model_cfg(), &variant, &pipe, &none).unwrap();

    assert!(
        p.makespan < s.makespan,
        "pipelining must shorten the clean campaign ({} vs {})",
        p.makespan,
        s.makespan
    );
    assert!(p.ckpt_hidden > 0.0, "some checkpoint time must be hidden");
    assert!(
        p.ckpt_exposed < s.ckpt_exposed,
        "exposed checkpoint time must shrink ({} vs {})",
        p.ckpt_exposed,
        s.ckpt_exposed
    );
    let sweeps = (CYCLES + 1) as f64 * p.checkpoint_time;
    assert!(
        (p.ckpt_hidden + p.ckpt_exposed - sweeps).abs() < 1e-9,
        "hidden + exposed must account for all (K+1) sweeps ({} vs {sweeps})",
        p.ckpt_hidden + p.ckpt_exposed
    );
    // The trace-level interval accounting agrees: the pipelined trace
    // carries all checkpoint seconds, and a positive fraction overlaps
    // cycle work, while the synchronous trace hides nothing.
    let overlap = p_trace.ckpt_overlap();
    assert!((overlap.total - sweeps).abs() < 1e-9);
    assert!(overlap.hidden > 0.0);
    let (_, s_trace) = model_campaign(&model_cfg(), &variant, &sync, &none).unwrap();
    let s_overlap = s_trace.ckpt_overlap();
    assert!(
        s_overlap.hidden.abs() < 1e-9,
        "a synchronous campaign hides nothing ({})",
        s_overlap.hidden
    );

    // Crash-loss bound: a mid-campaign crash loses the same bounded slice
    // in both modes, modulo at most one drained in-flight sweep.
    let mut fault = FaultConfig::none();
    fault.plan = FaultPlan::new(1).with_crash_at_cycle(0, CYCLES - 1, 0);
    fault.recv_timeout = 0.3;
    let (sc, _) = model_campaign(&model_cfg(), &variant, &sync, &fault).unwrap();
    let (pc, _) = model_campaign(&model_cfg(), &variant, &pipe, &fault).unwrap();
    assert_eq!(pc.restarts, 1);
    assert!(
        pc.lost_time <= sc.lost_time + pc.checkpoint_time + 1e-9,
        "pipelining must preserve the crash-loss bound ({} vs {})",
        pc.lost_time,
        sc.lost_time
    );
}
