//! Campaign-level conformance: kill–resume determinism and real-vs-DES
//! agreement.
//!
//! The headline invariant of the checkpoint/restart subsystem: a campaign
//! killed at any point — between cycles, mid-cycle via an injected crash,
//! or during a checkpoint commit — and resumed from disk produces
//! **bit-identical** final ensembles, per-cycle statistics, and per-cycle
//! trace-digest hashes to a campaign that was never interrupted. And on an
//! empty fault plan, the real supervised campaign and its DES model emit
//! byte-identical operation digests (cycle spans × K plus K+1 checkpoint
//! sets).

mod common;

use common::{TenantMix, SENKF};
use proptest::prelude::*;
use s_enkf::ckpt::CheckpointStore;
use s_enkf::fault::{FaultConfig, FaultPlan, RetryPolicy};
use s_enkf::parallel::{
    model_campaign, run_campaign, CampaignConfig, CampaignExecutor, CampaignModelPlan,
    CampaignReport, ModelConfig, ModelVariant,
};
use s_enkf::pfs::{FileStore, ScratchDir};

const CYCLES: usize = 3;

/// The shared small geometry — one definition, in the common harness.
fn mix() -> TenantMix {
    TenantMix::small()
}

fn campaign_cfg(cycles: usize) -> CampaignConfig {
    mix().campaign_cfg(cycles)
}

/// Fresh work + checkpoint stores under one scratch directory.
fn stores(label: &str) -> (ScratchDir, FileStore, CheckpointStore) {
    mix().stores(label)
}

fn executors() -> Vec<(&'static str, CampaignExecutor)> {
    vec![
        ("lenkf", CampaignExecutor::LEnkf { nsdx: 2, nsdy: 2 }),
        ("penkf", CampaignExecutor::PEnkf { nsdx: 2, nsdy: 2 }),
        ("senkf", CampaignExecutor::SEnkf(SENKF)),
        (
            "denkf",
            CampaignExecutor::DEnkf {
                shards: 4,
                kernel: s_enkf::core::BatchedKernel::Cholesky,
            },
        ),
    ]
}

fn assert_reports_identical(a: &CampaignReport, b: &CampaignReport, what: &str) {
    assert_eq!(a.stats, b.stats, "{what}: per-cycle statistics differ");
    assert_eq!(
        a.cycle_digests, b.cycle_digests,
        "{what}: per-cycle trace digests differ"
    );
    assert_eq!(
        a.final_analysis.states(),
        b.final_analysis.states(),
        "{what}: final ensembles differ"
    );
}

/// Killing a campaign at a cycle boundary (the process exits; all that
/// survives is the checkpoint directory) and resuming produces exactly
/// the uninterrupted run, on all three executors.
#[test]
fn kill_at_cycle_boundary_and_resume_is_bit_identical() {
    for (name, exec) in executors() {
        let (_s1, work1, ckpt1) = stores(&format!("camp-full-{name}"));
        let full = run_campaign(
            &work1,
            &ckpt1,
            &exec,
            &campaign_cfg(CYCLES),
            &FaultConfig::none(),
        )
        .unwrap();
        assert_eq!(full.stats.len(), CYCLES);
        assert_eq!(full.resumed_from, None);

        // "Kill" after 2 cycles: run a shorter campaign, drop every
        // in-memory object, and resume from the surviving directories.
        let (_s2, work2, ckpt2) = stores(&format!("camp-killed-{name}"));
        let partial = run_campaign(
            &work2,
            &ckpt2,
            &exec,
            &campaign_cfg(2),
            &FaultConfig::none(),
        )
        .unwrap();
        assert_eq!(partial.stats.len(), 2);
        drop(partial);

        let resumed = run_campaign(
            &work2,
            &ckpt2,
            &exec,
            &campaign_cfg(CYCLES),
            &FaultConfig::none(),
        )
        .unwrap();
        assert_eq!(
            resumed.resumed_from,
            Some(2),
            "{name}: must resume, not restart"
        );
        assert_reports_identical(&full, &resumed, name);
    }
}

/// A rank crash mid-cycle tears the cycle down; the supervisor restores
/// the last durable checkpoint from disk and re-runs. The recovered
/// campaign is bit-identical to a never-faulted one.
#[test]
fn crash_recovery_is_bit_identical_to_uninterrupted() {
    for (name, exec) in executors() {
        let (_s1, work1, ckpt1) = stores(&format!("camp-clean-{name}"));
        let clean = run_campaign(
            &work1,
            &ckpt1,
            &exec,
            &campaign_cfg(CYCLES),
            &FaultConfig::none(),
        )
        .unwrap();

        let mut fault = FaultConfig::none();
        fault.plan = FaultPlan::new(7).with_crash_at_cycle(0, 1, 0);
        fault.recv_timeout = 0.3;
        let (_s2, work2, ckpt2) = stores(&format!("camp-crash-{name}"));
        let recovered = run_campaign(&work2, &ckpt2, &exec, &campaign_cfg(CYCLES), &fault).unwrap();
        assert_eq!(
            recovered.recoveries.len(),
            1,
            "{name}: exactly one recovery for one injected crash"
        );
        assert_eq!(recovered.recoveries[0].cycle, 1);
        assert!(!recovered.recoveries[0].degraded);
        assert_reports_identical(&clean, &recovered, name);
    }
}

// Kill at a *random* cycle (including before any cycle completes), then
// resume — the CI smoke version runs a handful of random kill points.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn kill_at_random_cycle_and_resume_smoke(kill_after in 0usize..CYCLES) {
        let exec = CampaignExecutor::PEnkf { nsdx: 2, nsdy: 2 };
        let (_s1, work1, ckpt1) = stores("camp-rand-full");
        let full = run_campaign(
            &work1, &ckpt1, &exec, &campaign_cfg(CYCLES), &FaultConfig::none(),
        ).unwrap();

        let (_s2, work2, ckpt2) = stores("camp-rand-killed");
        if kill_after > 0 {
            run_campaign(
                &work2, &ckpt2, &exec, &campaign_cfg(kill_after), &FaultConfig::none(),
            ).unwrap();
        } else {
            // Kill before the first cycle ever ran: only the initial
            // (cycle 0) checkpoint may exist. Resume must cope with a
            // completely fresh directory too.
        }
        let resumed = run_campaign(
            &work2, &ckpt2, &exec, &campaign_cfg(CYCLES), &FaultConfig::none(),
        ).unwrap();
        prop_assert_eq!(&resumed.stats, &full.stats);
        prop_assert_eq!(&resumed.cycle_digests, &full.cycle_digests);
        prop_assert_eq!(resumed.final_analysis.states(), full.final_analysis.states());
    }
}

/// A checkpoint torn by a kill mid-commit (manifest never landed) is
/// skipped; resume falls back one cycle, re-runs it, and still converges
/// to the uninterrupted result.
#[test]
fn torn_checkpoint_on_kill_falls_back_one_cycle() {
    let exec = CampaignExecutor::PEnkf { nsdx: 2, nsdy: 2 };
    let (_s1, work1, ckpt1) = stores("camp-torn-full");
    let full = run_campaign(
        &work1,
        &ckpt1,
        &exec,
        &campaign_cfg(CYCLES),
        &FaultConfig::none(),
    )
    .unwrap();

    let (_s2, work2, ckpt2) = stores("camp-torn-killed");
    run_campaign(
        &work2,
        &ckpt2,
        &exec,
        &campaign_cfg(2),
        &FaultConfig::none(),
    )
    .unwrap();
    // The kill hit between cycle 2's member writes and its manifest
    // commit: the checkpoint is present but not durable.
    std::fs::remove_file(ckpt2.cycle_dir(2).join("MANIFEST.txt")).unwrap();
    let resumed = run_campaign(
        &work2,
        &ckpt2,
        &exec,
        &campaign_cfg(CYCLES),
        &FaultConfig::none(),
    )
    .unwrap();
    assert_eq!(resumed.resumed_from, Some(1), "fallback to cycle 1");
    assert_reports_identical(&full, &resumed, "torn-checkpoint");
}

/// A permanently lost member degrades the campaign to the N−1 path:
/// one budget-free recovery, then the ensemble continues on the
/// survivors for every remaining cycle.
#[test]
fn unrecoverable_member_degrades_to_n_minus_one() {
    let exec = CampaignExecutor::PEnkf { nsdx: 2, nsdy: 2 };
    let members = mix().members;
    let mut fault = FaultConfig::none();
    // The *last* member: after the ensemble shrinks, the index falls out
    // of range and cannot re-trigger.
    fault.plan = FaultPlan::new(3).with_unrecoverable_member(members - 1);
    fault.retry = RetryPolicy {
        max_retries: 1,
        base_backoff: 1e-6,
        multiplier: 2.0,
    };
    let (_s, work, ckpt) = stores("camp-degraded");
    let report = run_campaign(&work, &ckpt, &exec, &campaign_cfg(CYCLES), &fault).unwrap();
    assert!(report.degraded);
    assert_eq!(report.dropped_members, vec![members - 1]);
    assert_eq!(report.final_analysis.size(), members - 1);
    assert_eq!(report.stats.len(), CYCLES, "the campaign still completes");
    let deg: Vec<_> = report.recoveries.iter().filter(|r| r.degraded).collect();
    assert_eq!(deg.len(), 1, "one budget-free degradation recovery");
}

fn model_cfg() -> ModelConfig {
    mix().model_cfg()
}

/// On an empty fault plan, the real campaign and the DES campaign model
/// produce byte-identical operation digests: K identical cycle span sets
/// plus K+1 checkpoint sets on the supervisor rank.
#[test]
fn real_and_modeled_campaigns_conform_on_empty_plan() {
    let cases = [
        (
            "penkf",
            CampaignExecutor::PEnkf { nsdx: 2, nsdy: 2 },
            ModelVariant::PEnkf { nsdx: 2, nsdy: 2 },
        ),
        (
            "senkf",
            CampaignExecutor::SEnkf(SENKF),
            ModelVariant::SEnkf(SENKF),
        ),
    ];
    let plan = CampaignModelPlan {
        cycles: CYCLES,
        checkpoint: true,
        restart: campaign_cfg(CYCLES).restart,
    };
    for (name, exec, variant) in cases {
        let (_s, work, ckpt) = stores(&format!("camp-conf-{name}"));
        let real = run_campaign(
            &work,
            &ckpt,
            &exec,
            &campaign_cfg(CYCLES),
            &FaultConfig::none(),
        )
        .unwrap();
        let (_out, model_trace) =
            model_campaign(&model_cfg(), &variant, &plan, &FaultConfig::none()).unwrap();
        assert_eq!(
            real.trace.digest(),
            model_trace.digest(),
            "{name}: real and modeled campaign digests must be byte-identical"
        );
    }
}

/// The modeled no-checkpoint baseline: a late crash costs the whole
/// campaign, so checkpointing strictly reduces lost time.
#[test]
fn model_checkpointing_bounds_crash_loss() {
    let mut fault = FaultConfig::none();
    fault.plan = FaultPlan::new(1).with_crash_at_cycle(0, CYCLES - 1, 0);
    fault.recv_timeout = 0.3;
    let restart = campaign_cfg(CYCLES).restart;
    let variant = ModelVariant::PEnkf { nsdx: 2, nsdy: 2 };
    let with = CampaignModelPlan {
        cycles: CYCLES,
        checkpoint: true,
        restart,
    };
    let without = CampaignModelPlan {
        checkpoint: false,
        ..with
    };
    let (out_with, _) = model_campaign(&model_cfg(), &variant, &with, &fault).unwrap();
    let (out_without, _) = model_campaign(&model_cfg(), &variant, &without, &fault).unwrap();
    assert_eq!(out_with.restarts, 1);
    assert_eq!(out_without.restarts, 1);
    assert!(
        out_without.lost_time > out_with.lost_time,
        "no recovery line must lose more virtual time ({} vs {})",
        out_without.lost_time,
        out_with.lost_time
    );
    // And a fault-free campaign without checkpoints is cheaper — the
    // checkpoint overhead itself is visible in the makespan.
    let none = FaultConfig::none();
    let (clean_with, _) = model_campaign(&model_cfg(), &variant, &with, &none).unwrap();
    let (clean_without, _) = model_campaign(&model_cfg(), &variant, &without, &none).unwrap();
    assert!(clean_without.makespan < clean_with.makespan);
    let expected = clean_without.makespan + (CYCLES + 1) as f64 * clean_with.checkpoint_time;
    assert!(
        (clean_with.makespan - expected).abs() < 1e-9,
        "checkpoint overhead must be exactly K+1 serial member sweeps ({} vs {expected})",
        clean_with.makespan
    );
}
