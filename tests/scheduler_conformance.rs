//! Scheduler-level conformance: multi-tenant isolation and deterministic
//! decisions.
//!
//! The headline invariant of the scheduler: campaigns that share the
//! machine are *isolated*. A campaign dispatched next to strangers — on
//! its own stores, under the fair-share scheduler — produces bit-identical
//! per-cycle statistics, cycle digests, final ensembles, and trace
//! digests to the same campaign run alone with an equivalent static
//! allocation. And scheduling itself is deterministic: reruns of the same
//! seeded mix produce bit-identical decision logs.

mod common;

use common::{TenantMix, SENKF};
use s_enkf::fault::{FaultConfig, FaultPlan};
use s_enkf::parallel::{
    run_campaign, run_campaign_ctx, CampaignCtx, CampaignExecutor, CampaignReport, CkptMode,
};
use s_enkf::sched::{
    run_real, ClusterCapacity, Quota, RealDispatch, RealOutcome, SchedConfig, SharePolicy,
    SubmitError,
};

const CYCLES: usize = 3;

fn sched_cfg(ranks: usize, seed: u64) -> SchedConfig {
    SchedConfig {
        capacity: ClusterCapacity::tianhe2_like(ranks),
        policy: SharePolicy::FairShare,
        seed,
    }
}

fn assert_reports_identical(a: &CampaignReport, b: &CampaignReport, what: &str) {
    assert_eq!(a.stats, b.stats, "{what}: per-cycle statistics differ");
    assert_eq!(
        a.cycle_digests, b.cycle_digests,
        "{what}: per-cycle trace digests differ"
    );
    assert_eq!(
        a.final_analysis.states(),
        b.final_analysis.states(),
        "{what}: final ensembles differ"
    );
}

/// Full-trace comparison — valid only when both runs were uninterrupted
/// (a resumed run's trace covers just its post-resume cycles).
fn assert_traces_identical(a: &CampaignReport, b: &CampaignReport, what: &str) {
    assert_eq!(
        a.trace.digest(),
        b.trace.digest(),
        "{what}: trace digests differ"
    );
}

/// All four executors, one per tenant, scheduled concurrently: every
/// campaign's report is bit-identical to its solo run. Isolation holds on
/// the whole executor matrix, not just the modeled pair.
#[test]
fn concurrent_campaigns_match_solo_runs_on_all_executors() {
    let mix = TenantMix::small()
        .tenant(1.0)
        .job(CampaignExecutor::LEnkf { nsdx: 2, nsdy: 2 }, CYCLES)
        .tenant(2.0)
        .job(CampaignExecutor::PEnkf { nsdx: 2, nsdy: 2 }, CYCLES)
        .tenant(1.0)
        .job(CampaignExecutor::SEnkf(SENKF), CYCLES)
        .tenant(1.0)
        .job(
            CampaignExecutor::DEnkf {
                shards: 4,
                kernel: s_enkf::core::BatchedKernel::ShermanMorrison,
            },
            CYCLES,
        );

    // Solo baselines: each campaign alone on the machine.
    let mut solo = Vec::new();
    for (i, (_tenant, spec)) in mix.jobs().iter().enumerate() {
        let (_s, work, ckpt) = mix.stores(&format!("sched-solo-{i}"));
        let report = run_campaign(&work, &ckpt, &spec.exec, &spec.campaign, &spec.fault).unwrap();
        solo.push(report);
    }

    // The same three campaigns, admitted and run concurrently.
    let stores: Vec<_> = (0..mix.jobs().len())
        .map(|i| mix.stores(&format!("sched-conc-{i}")))
        .collect();
    let dispatches: Vec<RealDispatch<'_>> = mix
        .jobs()
        .iter()
        .zip(&stores)
        .map(|((tenant, spec), (_s, work, ckpt))| RealDispatch {
            tenant: *tenant,
            spec: spec.clone(),
            work,
            ckpt,
        })
        .collect();
    let out = run_real(&sched_cfg(64, 42), mix.tenants(), dispatches);
    assert!(out.rejected.is_empty(), "all four must be admitted");
    assert!(out.unscheduled.is_empty());
    assert_eq!(out.results.len(), 4);
    assert_eq!(
        out.results.iter().filter(|r| r.wave == 0).count(),
        4,
        "64 ranks fit all four in one wave"
    );

    for result in &out.results {
        let idx = mix
            .jobs()
            .iter()
            .position(|(t, _)| *t == result.id.tenant)
            .unwrap();
        let report = result.report.as_ref().expect("campaign must succeed");
        let what = format!("tenant {}", result.id.tenant);
        assert_reports_identical(&solo[idx], report, &what);
        assert_traces_identical(&solo[idx], report, &what);
    }
}

/// Kill–resume of one tenant's campaign — while another tenant shares the
/// machine, including a faulted cycle of its own — leaves both tenants
/// bit-identical: the killed campaign resumes to exactly its solo result,
/// and the neighbour never notices.
#[test]
fn kill_resume_of_one_tenant_leaves_the_other_bit_identical() {
    let mut fault_b = FaultConfig::none();
    fault_b.plan = FaultPlan::new(7).with_crash_at_cycle(0, 1, 0);
    fault_b.recv_timeout = 0.3;

    let mix = TenantMix::small()
        .tenant(1.0)
        .job(CampaignExecutor::PEnkf { nsdx: 2, nsdy: 2 }, CYCLES)
        .tenant(1.0)
        .job(CampaignExecutor::SEnkf(SENKF), CYCLES)
        .fault(fault_b.clone());

    // Baseline: the concurrent pair, uninterrupted.
    let (_sa, work_a, ckpt_a) = mix.stores("sched-kill-base-a");
    let (_sb, work_b, ckpt_b) = mix.stores("sched-kill-base-b");
    let (ta, spec_a) = mix.jobs()[0].clone();
    let (tb, spec_b) = mix.jobs()[1].clone();
    let base = run_real(
        &sched_cfg(64, 7),
        mix.tenants(),
        vec![
            RealDispatch {
                tenant: ta,
                spec: spec_a.clone(),
                work: &work_a,
                ckpt: &ckpt_a,
            },
            RealDispatch {
                tenant: tb,
                spec: spec_b.clone(),
                work: &work_b,
                ckpt: &ckpt_b,
            },
        ],
    );
    // Results are in (seeded) dispatch order, not submission order.
    let by_tenant = |out: &RealOutcome, t| {
        out.results
            .iter()
            .position(|r| r.id.tenant == t)
            .expect("tenant has a result")
    };
    let base_a = base.results[by_tenant(&base, ta)].report.as_ref().unwrap();
    let base_b = base.results[by_tenant(&base, tb)].report.as_ref().unwrap();
    assert_eq!(
        base_b.recoveries.len(),
        1,
        "tenant B's injected crash recovers under the scheduler too"
    );

    // Tenant A is killed after 2 cycles (all that survives is its
    // checkpoint directory); tenant B runs to completion beside it.
    let (_sa2, work_a2, ckpt_a2) = mix.stores("sched-kill-killed-a");
    let (_sb2, work_b2, ckpt_b2) = mix.stores("sched-kill-killed-b");
    let mut short_a = spec_a.clone();
    short_a.campaign.cycles = 2;
    let killed = run_real(
        &sched_cfg(64, 7),
        mix.tenants(),
        vec![
            RealDispatch {
                tenant: ta,
                spec: short_a,
                work: &work_a2,
                ckpt: &ckpt_a2,
            },
            RealDispatch {
                tenant: tb,
                spec: spec_b.clone(),
                work: &work_b2,
                ckpt: &ckpt_b2,
            },
        ],
    );
    let killed_b = killed.results[by_tenant(&killed, tb)]
        .report
        .as_ref()
        .unwrap();
    assert_reports_identical(base_b, killed_b, "tenant B beside the killed tenant");
    assert_traces_identical(base_b, killed_b, "tenant B beside the killed tenant");

    // Resume tenant A from its surviving checkpoints, again under the
    // scheduler: bit-identical to the uninterrupted concurrent run.
    let resumed = run_real(
        &sched_cfg(64, 7),
        mix.tenants(),
        vec![RealDispatch {
            tenant: ta,
            spec: spec_a,
            work: &work_a2,
            ckpt: &ckpt_a2,
        }],
    );
    let resumed_a = resumed.results[0].report.as_ref().unwrap();
    assert_eq!(resumed_a.resumed_from, Some(2), "must resume, not restart");
    assert_reports_identical(base_a, resumed_a, "tenant A after kill-resume");
}

/// A pipelined tenant beside a synchronous one: the scheduler passes each
/// job's [`JobSpec::ckpt_mode`] through to the dispatched campaign, both
/// tenants stay bit-identical to their solo runs in the matching mode,
/// and (pipelining being a scheduling change only) the pipelined tenant
/// also matches the *synchronous* solo result.
#[test]
fn pipelined_tenant_is_isolated_and_matches_its_solo_run() {
    let mix = TenantMix::small()
        .tenant(1.0)
        .job(CampaignExecutor::PEnkf { nsdx: 2, nsdy: 2 }, CYCLES)
        .tenant(1.0)
        .job(CampaignExecutor::SEnkf(SENKF), CYCLES);
    let (ta, spec_a) = mix.jobs()[0].clone();
    let (tb, spec_b) = mix.jobs()[1].clone();
    let spec_a = spec_a.pipelined();

    // Solo baselines, each in its own commit mode.
    let solo_mode = |label: &str, spec: &s_enkf::sched::JobSpec| {
        let (_s, work, ckpt) = mix.stores(label);
        run_campaign_ctx(
            &work,
            &ckpt,
            &spec.exec,
            &spec.campaign,
            &spec.fault,
            &CampaignCtx {
                tenant: None,
                backoff: Default::default(),
                ckpt_mode: spec.ckpt_mode,
                health: None,
            },
        )
        .unwrap()
    };
    let solo_a = solo_mode("sched-pipe-solo-a", &spec_a);
    let solo_b = solo_mode("sched-pipe-solo-b", &spec_b);
    assert_eq!(spec_a.ckpt_mode, CkptMode::Pipelined);
    assert_eq!(spec_b.ckpt_mode, CkptMode::Sync);

    let (_sa, work_a, ckpt_a) = mix.stores("sched-pipe-conc-a");
    let (_sb, work_b, ckpt_b) = mix.stores("sched-pipe-conc-b");
    let out = run_real(
        &sched_cfg(64, 21),
        mix.tenants(),
        vec![
            RealDispatch {
                tenant: ta,
                spec: spec_a.clone(),
                work: &work_a,
                ckpt: &ckpt_a,
            },
            RealDispatch {
                tenant: tb,
                spec: spec_b,
                work: &work_b,
                ckpt: &ckpt_b,
            },
        ],
    );
    assert!(out.rejected.is_empty() && out.unscheduled.is_empty());
    for result in &out.results {
        let (solo, what) = if result.id.tenant == ta {
            (&solo_a, "pipelined tenant")
        } else {
            (&solo_b, "synchronous tenant")
        };
        let report = result.report.as_ref().expect("campaign must succeed");
        assert_reports_identical(solo, report, what);
        assert_traces_identical(solo, report, what);
    }

    // And the pipelined solo run is itself bit-identical to a synchronous
    // one — the mode changes the schedule, never the science.
    let mut sync_a = spec_a;
    sync_a.ckpt_mode = CkptMode::Sync;
    let solo_sync_a = solo_mode("sched-pipe-solo-a-sync", &sync_a);
    assert_reports_identical(&solo_sync_a, &solo_a, "pipelined vs sync solo");
    assert_traces_identical(&solo_sync_a, &solo_a, "pipelined vs sync solo");
}

/// Scheduling decisions are deterministic: the same seeded mix produces
/// bit-identical decision logs (and digests) on every rerun.
#[test]
fn real_dispatch_decisions_are_bit_identical_across_reruns() {
    let mix = TenantMix::small()
        .tenant(2.0)
        .job(CampaignExecutor::PEnkf { nsdx: 2, nsdy: 2 }, 1)
        .tenant(1.0)
        .job(CampaignExecutor::SEnkf(SENKF), 1);

    let run = |label: &str| -> RealOutcome {
        let stores: Vec<_> = (0..mix.jobs().len())
            .map(|i| mix.stores(&format!("{label}-{i}")))
            .collect();
        let dispatches: Vec<RealDispatch<'_>> = mix
            .jobs()
            .iter()
            .zip(&stores)
            .map(|((tenant, spec), (_s, work, ckpt))| RealDispatch {
                tenant: *tenant,
                spec: spec.clone(),
                work,
                ckpt,
            })
            .collect();
        run_real(&sched_cfg(16, 99), mix.tenants(), dispatches)
    };
    let first = run("sched-det-1");
    let second = run("sched-det-2");
    assert_eq!(first.decisions, second.decisions);
    assert_eq!(first.decisions_digest, second.decisions_digest);
}

/// Admission control end to end: queue quotas backpressure a greedy
/// tenant, oversized jobs are refused outright, and a rank budget smaller
/// than the mix forces a second wave — all deterministic.
#[test]
fn admission_quotas_and_rank_budget_shape_the_schedule() {
    let mix = TenantMix::small()
        .tenant(1.0)
        .quota(Quota {
            max_running: 1,
            max_queued: 2,
            min_submit_gap: 0.0,
        })
        .job(CampaignExecutor::PEnkf { nsdx: 2, nsdy: 2 }, 1)
        .job(CampaignExecutor::PEnkf { nsdx: 2, nsdy: 2 }, 1)
        .job(CampaignExecutor::PEnkf { nsdx: 2, nsdy: 2 }, 1);

    let stores: Vec<_> = (0..mix.jobs().len())
        .map(|i| mix.stores(&format!("sched-adm-{i}")))
        .collect();
    let dispatches: Vec<RealDispatch<'_>> = mix
        .jobs()
        .iter()
        .zip(&stores)
        .map(|((tenant, spec), (_s, work, ckpt))| RealDispatch {
            tenant: *tenant,
            spec: spec.clone(),
            work,
            ckpt,
        })
        .collect();
    // 4-rank machine, 4-rank jobs, max_running 1, max_queued 2: all
    // submits land before the first wave, so the first two jobs queue
    // (running in waves 0 and 1) and the third submit is backpressured.
    let out = run_real(&sched_cfg(4, 5), mix.tenants(), dispatches);
    assert_eq!(out.rejected.len(), 1);
    assert!(matches!(
        out.rejected[0].1,
        SubmitError::Backpressure {
            queued: 2,
            max_queued: 2
        }
    ));
    assert_eq!(out.results.len(), 2);
    assert_eq!(out.results[0].wave, 0);
    assert_eq!(out.results[1].wave, 1);
    assert!(out.results.iter().all(|r| r.report.is_ok()));

    // A job wider than the machine is refused at submit.
    let wide = TenantMix::small()
        .tenant(1.0)
        .job(CampaignExecutor::SEnkf(SENKF), 1);
    let (_s, work, ckpt) = wide.stores("sched-adm-wide");
    let (tenant, spec) = wide.jobs()[0].clone();
    let out = run_real(
        &sched_cfg(2, 5),
        wide.tenants(),
        vec![RealDispatch {
            tenant,
            spec,
            work: &work,
            ckpt: &ckpt,
        }],
    );
    assert_eq!(out.rejected.len(), 1);
    assert!(matches!(out.rejected[0].1, SubmitError::TooLarge { .. }));
    assert!(out.results.is_empty());
}
