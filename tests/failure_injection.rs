//! Failure injection: the parallel executors must surface substrate
//! failures (missing or truncated member files, inconsistent setups) as
//! errors instead of panicking, deadlocking, or silently producing a wrong
//! analysis.

use s_enkf::core::{LocalAnalysis, PerturbedObservations};
use s_enkf::data::{write_ensemble, ScenarioBuilder};
use s_enkf::grid::{FileLayout, LocalizationRadius, Mesh};
use s_enkf::parallel::{AssimilationSetup, LEnkf, PEnkf, SEnkf};
use s_enkf::pfs::{FileStore, ScratchDir};
use s_enkf::tuning::Params;

fn radius() -> LocalizationRadius {
    LocalizationRadius { xi: 1, eta: 1 }
}

#[test]
fn missing_member_file_is_an_error_in_every_variant() {
    let mesh = Mesh::new(8, 8);
    let members = 4;
    let scenario = ScenarioBuilder::new(mesh).members(members).seed(1).build();
    let scratch = ScratchDir::new("fail-missing").unwrap();
    let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 8)).unwrap();
    write_ensemble(&store, &scenario.ensemble).unwrap();
    // Remove one member file.
    std::fs::remove_file(store.member_path(2)).unwrap();

    let setup = AssimilationSetup {
        store: &store,
        members,
        observations: &scenario.observations,
        analysis: LocalAnalysis::new(radius()),
    };
    assert!(
        PEnkf { nsdx: 2, nsdy: 2 }.run(&setup).is_err(),
        "P-EnKF must error"
    );
    assert!(
        LEnkf { nsdx: 2, nsdy: 2 }.run(&setup).is_err(),
        "L-EnKF must error"
    );
    let senkf = SEnkf::new(Params {
        nsdx: 2,
        nsdy: 2,
        layers: 2,
        ncg: 2,
    });
    assert!(senkf.run(&setup).is_err(), "S-EnKF must error");
}

#[test]
fn truncated_member_file_is_an_error() {
    let mesh = Mesh::new(8, 8);
    let members = 3;
    let scenario = ScenarioBuilder::new(mesh).members(members).seed(2).build();
    let scratch = ScratchDir::new("fail-truncated").unwrap();
    let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 8)).unwrap();
    write_ensemble(&store, &scenario.ensemble).unwrap();
    // Truncate the last member to half its size.
    let path = store.member_path(2);
    let full = std::fs::read(&path).unwrap();
    std::fs::write(&path, &full[..full.len() / 2]).unwrap();

    let setup = AssimilationSetup {
        store: &store,
        members,
        observations: &scenario.observations,
        analysis: LocalAnalysis::new(radius()),
    };
    assert!(PEnkf { nsdx: 2, nsdy: 2 }.run(&setup).is_err());
}

#[test]
fn member_count_mismatch_with_perturbations_is_rejected() {
    let mesh = Mesh::new(8, 8);
    let scenario = ScenarioBuilder::new(mesh).members(4).seed(3).build();
    let scratch = ScratchDir::new("fail-mismatch").unwrap();
    let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 8)).unwrap();
    write_ensemble(&store, &scenario.ensemble).unwrap();
    // Claim 3 members while the perturbation schema was built for 4.
    let setup = AssimilationSetup {
        store: &store,
        members: 3,
        observations: &scenario.observations,
        analysis: LocalAnalysis::new(radius()),
    };
    assert!(PEnkf { nsdx: 2, nsdy: 2 }.run(&setup).is_err());
}

#[test]
fn observation_mesh_mismatch_is_rejected() {
    let mesh = Mesh::new(8, 8);
    let members = 4;
    let scenario = ScenarioBuilder::new(mesh).members(members).seed(4).build();
    let scratch = ScratchDir::new("fail-mesh").unwrap();
    let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 8)).unwrap();
    write_ensemble(&store, &scenario.ensemble).unwrap();
    // Observations built on a different mesh.
    let other = ScenarioBuilder::new(Mesh::new(12, 8))
        .members(members)
        .seed(4)
        .build();
    let setup = AssimilationSetup {
        store: &store,
        members,
        observations: &other.observations,
        analysis: LocalAnalysis::new(radius()),
    };
    assert!(PEnkf { nsdx: 2, nsdy: 2 }.run(&setup).is_err());
}

#[test]
fn too_few_members_is_rejected() {
    let mesh = Mesh::new(8, 8);
    let scenario = ScenarioBuilder::new(mesh).members(2).seed(5).build();
    let scratch = ScratchDir::new("fail-few").unwrap();
    let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 8)).unwrap();
    write_ensemble(&store, &scenario.ensemble).unwrap();
    let obs = scenario.observations.clone();
    // Rebuild a 1-member claim: validate() must reject it.
    let setup = AssimilationSetup {
        store: &store,
        members: 1,
        observations: &obs,
        analysis: LocalAnalysis::new(radius()),
    };
    assert!(setup.validate().is_err());
    let _ = PerturbedObservations::new(0, 2); // silence unused-import lints on feature churn
}
