//! Failure injection: the parallel executors must surface substrate
//! failures (missing or truncated member files, inconsistent setups) as
//! errors instead of panicking, deadlocking, or silently producing a wrong
//! analysis.

mod common;

use common::harness_labeled;
use s_enkf::core::{LocalAnalysis, PerturbedObservations};
use s_enkf::data::ScenarioBuilder;
use s_enkf::grid::{LocalizationRadius, Mesh};
use s_enkf::parallel::{AssimilationSetup, LEnkf, PEnkf, SEnkf};
use s_enkf::tuning::Params;

fn radius() -> LocalizationRadius {
    LocalizationRadius { xi: 1, eta: 1 }
}

#[test]
fn missing_member_file_is_an_error_in_every_variant() {
    let mesh = Mesh::new(8, 8);
    let members = 4;
    let h = harness_labeled("fail-missing", mesh, members, 1, 1);
    // Remove one member file.
    std::fs::remove_file(h.store.member_path(2)).unwrap();

    let setup = AssimilationSetup {
        store: &h.store,
        members,
        observations: &h.scenario.observations,
        analysis: LocalAnalysis::new(radius()),
    };
    assert!(
        PEnkf { nsdx: 2, nsdy: 2 }.run(&setup).is_err(),
        "P-EnKF must error"
    );
    assert!(
        LEnkf { nsdx: 2, nsdy: 2 }.run(&setup).is_err(),
        "L-EnKF must error"
    );
    let senkf = SEnkf::new(Params {
        nsdx: 2,
        nsdy: 2,
        layers: 2,
        ncg: 2,
    });
    assert!(senkf.run(&setup).is_err(), "S-EnKF must error");
}

#[test]
fn truncated_member_file_is_an_error() {
    let mesh = Mesh::new(8, 8);
    let members = 3;
    let h = harness_labeled("fail-truncated", mesh, members, 2, 1);
    // Truncate the last member to half its size.
    let path = h.store.member_path(2);
    let full = std::fs::read(&path).unwrap();
    std::fs::write(&path, &full[..full.len() / 2]).unwrap();

    let setup = AssimilationSetup {
        store: &h.store,
        members,
        observations: &h.scenario.observations,
        analysis: LocalAnalysis::new(radius()),
    };
    assert!(PEnkf { nsdx: 2, nsdy: 2 }.run(&setup).is_err());
}

#[test]
fn member_count_mismatch_with_perturbations_is_rejected() {
    let mesh = Mesh::new(8, 8);
    let h = harness_labeled("fail-mismatch", mesh, 4, 3, 1);
    // Claim 3 members while the perturbation schema was built for 4.
    let setup = AssimilationSetup {
        store: &h.store,
        members: 3,
        observations: &h.scenario.observations,
        analysis: LocalAnalysis::new(radius()),
    };
    assert!(PEnkf { nsdx: 2, nsdy: 2 }.run(&setup).is_err());
}

#[test]
fn observation_mesh_mismatch_is_rejected() {
    let mesh = Mesh::new(8, 8);
    let members = 4;
    let h = harness_labeled("fail-mesh", mesh, members, 4, 1);
    // Observations built on a different mesh.
    let other = ScenarioBuilder::new(Mesh::new(12, 8))
        .members(members)
        .seed(4)
        .build();
    let setup = AssimilationSetup {
        store: &h.store,
        members,
        observations: &other.observations,
        analysis: LocalAnalysis::new(radius()),
    };
    assert!(PEnkf { nsdx: 2, nsdy: 2 }.run(&setup).is_err());
}

#[test]
fn too_few_members_is_rejected() {
    let mesh = Mesh::new(8, 8);
    let h = harness_labeled("fail-few", mesh, 2, 5, 1);
    let obs = h.scenario.observations.clone();
    // Rebuild a 1-member claim: validate() must reject it.
    let setup = AssimilationSetup {
        store: &h.store,
        members: 1,
        observations: &obs,
        analysis: LocalAnalysis::new(radius()),
    };
    assert!(setup.validate().is_err());
    let _ = PerturbedObservations::new(0, 2); // silence unused-import lints on feature churn
}
