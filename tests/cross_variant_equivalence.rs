//! Cross-crate integration: every parallel variant, at every
//! parameterization, must produce exactly the analysis of the serial
//! point-wise reference — the paper's implementations differ in *how data
//! moves*, never in *what is computed*.

mod common;

use common::harness;
use s_enkf::core::{serial_enkf, serial_enkf_decomposed, BatchedKernel, LocalAnalysis};
use s_enkf::grid::{Decomposition, LocalizationRadius, Mesh};
use s_enkf::parallel::{AssimilationSetup, DEnkf, LEnkf, PEnkf, SEnkf};
use s_enkf::tuning::Params;

#[test]
fn all_variants_match_serial_reference() {
    let mesh = Mesh::new(24, 12);
    let members = 6;
    let h = harness(mesh, members, 101, 1);
    let radius = LocalizationRadius { xi: 2, eta: 1 };
    let setup = AssimilationSetup {
        store: &h.store,
        members,
        observations: &h.scenario.observations,
        analysis: LocalAnalysis::new(radius),
    };
    let reference = serial_enkf(&h.scenario.ensemble, &h.scenario.observations, radius).unwrap();

    let (l, _) = LEnkf { nsdx: 3, nsdy: 2 }.run(&setup).unwrap();
    assert!(l.states().approx_eq(reference.states(), 1e-12), "L-EnKF");

    let (p, _) = PEnkf { nsdx: 4, nsdy: 3 }.run(&setup).unwrap();
    assert!(p.states().approx_eq(reference.states(), 1e-12), "P-EnKF");

    for params in [
        Params {
            nsdx: 2,
            nsdy: 2,
            layers: 1,
            ncg: 1,
        },
        Params {
            nsdx: 3,
            nsdy: 2,
            layers: 2,
            ncg: 2,
        },
        Params {
            nsdx: 4,
            nsdy: 3,
            layers: 4,
            ncg: 3,
        },
        Params {
            nsdx: 6,
            nsdy: 4,
            layers: 3,
            ncg: 6,
        },
    ] {
        let (s, _) = SEnkf::new(params).run(&setup).unwrap();
        assert!(
            s.states().approx_eq(reference.states(), 1e-12),
            "S-EnKF {params:?} diverged"
        );
    }
}

#[test]
fn equivalence_holds_with_multi_level_files() {
    // Files carry 5 vertical levels (h = 40); the analysis works on the
    // surface level, and every reading strategy must slice it identically.
    let mesh = Mesh::new(16, 8);
    let members = 5;
    let h = harness(mesh, members, 55, 5);
    let radius = LocalizationRadius { xi: 1, eta: 1 };
    let setup = AssimilationSetup {
        store: &h.store,
        members,
        observations: &h.scenario.observations,
        analysis: LocalAnalysis::new(radius),
    };
    let reference = serial_enkf(&h.scenario.ensemble, &h.scenario.observations, radius).unwrap();
    let (p, _) = PEnkf { nsdx: 2, nsdy: 2 }.run(&setup).unwrap();
    let (s, _) = SEnkf::new(Params {
        nsdx: 2,
        nsdy: 2,
        layers: 2,
        ncg: 1,
    })
    .run(&setup)
    .unwrap();
    assert!(p.states().approx_eq(reference.states(), 1e-12));
    assert!(s.states().approx_eq(reference.states(), 1e-12));
}

#[test]
fn blocked_granularity_matches_serial_blocked() {
    // Region-granularity analyses depend on the decomposition, so P-EnKF
    // must be compared against the serial run over the *same* decomposition.
    let mesh = Mesh::new(16, 8);
    let members = 8;
    let h = harness(mesh, members, 77, 1);
    let radius = LocalizationRadius { xi: 1, eta: 1 };
    let analysis = LocalAnalysis::blocked(radius);
    let setup = AssimilationSetup {
        store: &h.store,
        members,
        observations: &h.scenario.observations,
        analysis,
    };
    let decomp = Decomposition::new(mesh, 4, 2).unwrap();
    let reference = serial_enkf_decomposed(
        &h.scenario.ensemble,
        &h.scenario.observations,
        analysis,
        &decomp,
    )
    .unwrap();
    let (p, _) = PEnkf { nsdx: 4, nsdy: 2 }.run(&setup).unwrap();
    assert!(p.states().approx_eq(reference.states(), 1e-12));
}

/// D-EnKF computes the global covariance-form update (Eq. 3 with the
/// sample covariance); L-EnKF computes the localized precision-form update
/// (Eq. 6 with the modified-Cholesky B̂⁻¹). The two are the
/// Sherman–Morrison–Woodbury duals of each other, so in the regime where
/// localization and regularization vanish — a localization window covering
/// the whole mesh, zero relative ridge, and enough members for a full-rank
/// sample covariance (N − 1 ≥ n) — they must agree. The 1e-6 tolerance is
/// deliberately loose: the duals reach the same analysis through different
/// factorizations (per-point regression solves vs one batched Cholesky),
/// so the last few digits differ even though the algebra is identical.
#[test]
fn denkf_matches_lenkf_in_the_full_rank_global_regime() {
    let mesh = Mesh::new(4, 3); // n = 12 state components
    let members = 20; // N − 1 = 19 ≥ n: full-rank sample covariance
    let h = harness(mesh, members, 202, 1);
    // Window ≥ mesh: every point's local box is the whole domain.
    let radius = LocalizationRadius { xi: 4, eta: 3 };
    let mut analysis = LocalAnalysis::new(radius);
    analysis.ridge = 0.0; // exact regressions, no shrinkage
    let setup = AssimilationSetup {
        store: &h.store,
        members,
        observations: &h.scenario.observations,
        analysis,
    };

    let (l, _) = LEnkf { nsdx: 2, nsdy: 1 }.run(&setup).unwrap();
    let (d_chol, _, _) = DEnkf {
        shards: 3,
        kernel: BatchedKernel::Cholesky,
    }
    .run_traced(&setup)
    .unwrap();
    assert!(
        d_chol.states().approx_eq(l.states(), 1e-6),
        "D-EnKF and L-EnKF diverge in the SMW-equivalence regime"
    );

    // The two C⁻¹ kernels are exact algebraic rearrangements of each
    // other, so they agree far tighter than the cross-form tolerance.
    let (d_sm, _, _) = DEnkf {
        shards: 3,
        kernel: BatchedKernel::ShermanMorrison,
    }
    .run_traced(&setup)
    .unwrap();
    assert!(
        d_sm.states().approx_eq(d_chol.states(), 1e-10),
        "Sherman-Morrison and Cholesky kernels diverge"
    );

    // Shard count never changes a bit: the batched update is global and
    // the kernel GEMM accumulates in a shape-independent order.
    let (d_one, _, _) = DEnkf {
        shards: 1,
        kernel: BatchedKernel::Cholesky,
    }
    .run_traced(&setup)
    .unwrap();
    assert_eq!(
        d_one.states().as_slice(),
        d_chol.states().as_slice(),
        "shard count changed the analysis bits"
    );
}

#[test]
fn repeated_runs_are_deterministic() {
    let mesh = Mesh::new(16, 8);
    let members = 4;
    let h = harness(mesh, members, 31, 1);
    let radius = LocalizationRadius { xi: 1, eta: 1 };
    let setup = AssimilationSetup {
        store: &h.store,
        members,
        observations: &h.scenario.observations,
        analysis: LocalAnalysis::new(radius),
    };
    let senkf = SEnkf::new(Params {
        nsdx: 2,
        nsdy: 2,
        layers: 2,
        ncg: 2,
    });
    let (a, _) = senkf.run(&setup).unwrap();
    let (b, _) = senkf.run(&setup).unwrap();
    assert_eq!(
        a.states(),
        b.states(),
        "same inputs, same threads, same analysis"
    );
}
