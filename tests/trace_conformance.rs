//! Cross-executor trace conformance.
//!
//! The real (threaded) and modeled (DES) executors are two renderings of
//! one algorithmic description, so the *operations* they perform — which
//! rank reads which bytes with how many seeks, who sends how much to whom,
//! which stages compute — must be identical even though their timings are
//! wall-clock vs virtual. The trace digest (a sorted, time-free operation
//! multiset) makes that checkable: the two sides must produce
//! byte-identical digests on the same configuration.

use s_enkf::parallel::model::penkf::model_penkf_traced;
use s_enkf::parallel::model::senkf::model_senkf_traced;
use s_enkf::parallel::AssimilationSetup;
use s_enkf::prelude::*;

struct Case {
    mesh: Mesh,
    members: usize,
    h: u64,
    radius: LocalizationRadius,
    penkf: (usize, usize),
    senkf: Params,
}

/// Run one configuration through all four executors and check digests.
fn check_case(case: &Case) {
    let Case {
        mesh,
        members,
        h,
        radius,
        penkf: (nsdx, nsdy),
        senkf,
    } = *case;
    let scenario = ScenarioBuilder::new(mesh).members(members).seed(42).build();
    let scratch = ScratchDir::new("trace-conf").unwrap();
    let store = FileStore::open(scratch.path(), FileLayout::new(mesh, h)).unwrap();
    write_ensemble(&store, &scenario.ensemble).unwrap();
    let setup = AssimilationSetup {
        store: &store,
        members,
        observations: &scenario.observations,
        analysis: LocalAnalysis::new(radius),
    };

    let mut cfg = ModelConfig::paper();
    cfg.workload = Workload {
        nx: mesh.nx(),
        ny: mesh.ny(),
        members,
        h,
        xi: radius.xi,
        eta: radius.eta,
    };

    // P-EnKF: real vs modeled.
    let (_, _, p_real) = PEnkf { nsdx, nsdy }.run_traced(&setup).unwrap();
    let (_, p_model) = model_penkf_traced(&cfg, nsdx, nsdy).unwrap();
    assert_eq!(
        p_real.digest(),
        p_model.digest(),
        "P-EnKF real/model operation digests diverge ({nsdx}x{nsdy})"
    );

    // S-EnKF: real vs modeled.
    let (_, _, s_real) = SEnkf::new(senkf).run_traced(&setup).unwrap();
    let (_, s_model) = model_senkf_traced(&cfg, senkf).unwrap();
    assert_eq!(
        s_real.digest(),
        s_model.digest(),
        "S-EnKF real/model operation digests diverge ({senkf:?})"
    );

    // The co-design's point, visible in the trace: bar reading needs
    // strictly fewer disk addressing operations than block reading.
    assert!(
        s_real.total_seeks() < p_real.total_seeks(),
        "S-EnKF must seek strictly less than P-EnKF: {} vs {}",
        s_real.total_seeks(),
        p_real.total_seeks()
    );
}

#[test]
fn geometry_a_first_parameterization() {
    check_case(&Case {
        mesh: Mesh::new(24, 12),
        members: 4,
        h: 8,
        radius: LocalizationRadius { xi: 1, eta: 1 },
        penkf: (3, 2),
        senkf: Params {
            nsdx: 3,
            nsdy: 2,
            layers: 2,
            ncg: 2,
        },
    });
}

#[test]
fn geometry_a_second_parameterization() {
    check_case(&Case {
        mesh: Mesh::new(24, 12),
        members: 4,
        h: 8,
        radius: LocalizationRadius { xi: 2, eta: 1 },
        penkf: (4, 2),
        senkf: Params {
            nsdx: 4,
            nsdy: 2,
            layers: 3,
            ncg: 4,
        },
    });
}

#[test]
fn geometry_b_first_parameterization() {
    check_case(&Case {
        mesh: Mesh::new(30, 18),
        members: 6,
        h: 8,
        radius: LocalizationRadius { xi: 1, eta: 2 },
        penkf: (5, 3),
        senkf: Params {
            nsdx: 5,
            nsdy: 3,
            layers: 2,
            ncg: 3,
        },
    });
}

#[test]
fn geometry_b_second_parameterization() {
    check_case(&Case {
        mesh: Mesh::new(30, 18),
        members: 6,
        h: 8,
        radius: LocalizationRadius { xi: 2, eta: 2 },
        penkf: (2, 3),
        senkf: Params {
            nsdx: 2,
            nsdy: 3,
            layers: 3,
            ncg: 2,
        },
    });
}
