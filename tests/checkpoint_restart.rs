//! Durability of the checkpoint layer and the atomic member-write path.
//!
//! Three guarantees under test:
//!
//! 1. **Atomic member writes** (`FileStore`): an interrupted write — a
//!    stale temp file, or a torn in-place payload — is *detected*, never
//!    silently read as member data.
//! 2. **Self-verifying checkpoints** (`CheckpointStore`): flipping any
//!    single byte of a checkpointed member, the aux blob, or the manifest
//!    yields a typed `CorruptMember`/`CorruptManifest`, quarantines the
//!    artifact, and `load_latest` falls back to the previous durable
//!    cycle.
//! 3. **Round-trip exactness**: a save → load cycle reproduces every
//!    field bit-exactly (f64 payloads included).

mod common;

use common::harness_labeled;
use proptest::prelude::*;
use s_enkf::ckpt::{CampaignCheckpoint, CheckpointStore, CkptError};
use s_enkf::core::Ensemble;
use s_enkf::data::CycleStats;
use s_enkf::grid::Mesh;
use s_enkf::linalg::Matrix;
use s_enkf::pfs::{FileStore, ScratchDir};
use std::fs;

const FP: u64 = 0x00C0_FFEE;
const MEMBERS: usize = 3;

fn synthetic(cycle: usize, salt: u64) -> CampaignCheckpoint {
    let mesh = Mesh::new(10, 6);
    let n = mesh.n();
    let mk = |tag: u64| {
        Matrix::from_fn(n, MEMBERS, |i, k| {
            ((i as u64 * 37 + k as u64 * 11 + tag + salt) as f64).sin() * 2.5
        })
    };
    CampaignCheckpoint {
        cycle,
        seed: 99,
        members0: MEMBERS,
        rng_cursor: 4_000 + cycle as u64,
        config_fp: FP,
        truth: std::sync::Arc::new((0..n).map(|i| ((i as u64 + salt) as f64).cos()).collect()),
        analysis: std::sync::Arc::new(Ensemble::new(mesh, mk(1))),
        free_run: std::sync::Arc::new(Ensemble::new(mesh, mk(2))),
        stats: (0..cycle)
            .map(|c| CycleStats {
                cycle: c,
                forecast_rmse: 0.4 + c as f64 * 0.1,
                analysis_rmse: 0.2 + c as f64 * 0.1,
                free_run_rmse: 0.9 + c as f64 * 0.1,
            })
            .collect(),
        cycle_digests: (0..cycle).map(|c| salt ^ (0xAA00 + c as u64)).collect(),
    }
}

/// A store holding durable checkpoints for cycles 1 and 2.
fn two_cycles(label: &str) -> (ScratchDir, CheckpointStore) {
    let scratch = ScratchDir::new(label).unwrap();
    let store = CheckpointStore::create(scratch.path().join("ckpt")).unwrap();
    store.save(&synthetic(1, 5), None).unwrap();
    store.save(&synthetic(2, 6), None).unwrap();
    (scratch, store)
}

#[test]
fn stale_tmp_from_interrupted_atomic_write_is_never_read() {
    let mesh = Mesh::new(8, 6);
    let h = harness_labeled("ckpt-staletmp", mesh, 2, 3, 1);
    let before = h.store.read_full(1).unwrap().to_vec();
    // Simulate a writer that died between creating the temp file and the
    // rename: a garbage `.tmp` sits next to the member.
    let tmp = h.store.member_path(1).with_extension("bin.tmp");
    fs::write(&tmp, vec![0xAB; 16]).unwrap();
    let reopened = FileStore::open(h.scratch.path(), h.store.layout()).unwrap();
    assert_eq!(
        reopened.num_members(),
        2,
        "the temp file must not be scanned as a member"
    );
    assert_eq!(
        reopened.read_full(1).unwrap().to_vec(),
        before,
        "the committed payload is untouched by the dead writer"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A torn in-place write (the file truncated at an arbitrary point)
    /// surfaces as a typed short-read error with byte-accurate context —
    /// the member is never silently read.
    #[test]
    fn torn_member_write_is_detected(frac in 0.0f64..1.0, seed in 0u64..500) {
        let mesh = Mesh::new(8, 6);
        let h = harness_labeled("ckpt-torn", mesh, 2, seed, 1);
        let len = h.store.layout().file_size();
        let cut = ((len as f64 * frac) as u64).min(len - 1);
        let f = fs::OpenOptions::new()
            .write(true)
            .open(h.store.member_path(1))
            .unwrap();
        f.set_len(cut).unwrap();
        drop(f);
        let err = h
            .store
            .read_full(1)
            .expect_err("a torn member must not be silently read");
        prop_assert_eq!(err.member, 1);
        prop_assert_eq!(err.actual, cut);
    }

    /// Flipping any single byte of a checkpointed member yields
    /// `CorruptMember`, quarantines the file, and `load_latest` restores
    /// the previous durable cycle.
    #[test]
    fn member_byte_flip_falls_back_to_prior_cycle(
        member in 0usize..MEMBERS,
        offset in 0usize..480, // file is 10*6*8 = 480 bytes
        bit in 0u8..8,
    ) {
        let (_s, store) = two_cycles("ckpt-flip-member");
        let victim = store
            .cycle_dir(2)
            .join(format!("member_{member:05}.bin"));
        let mut bytes = fs::read(&victim).unwrap();
        bytes[offset] ^= 1 << bit;
        fs::write(&victim, &bytes).unwrap();
        match store.load_cycle(2, FP, None) {
            Err(CkptError::CorruptMember { cycle, member: m, .. }) => {
                prop_assert_eq!((cycle, m), (2, member));
            }
            other => prop_assert!(false, "expected CorruptMember, got {:?}", other.map(|_| ())),
        }
        prop_assert!(!victim.exists(), "corrupt member must be quarantined");
        let (back, skipped) = store.load_latest(FP, None).unwrap().unwrap();
        prop_assert_eq!(back.cycle, 1, "fallback to the previous durable cycle");
        prop_assert_eq!(skipped.len(), 1);
        let reference = synthetic(1, 5);
        prop_assert_eq!(back.analysis.states(), reference.analysis.states());
        prop_assert_eq!(back.rng_cursor, reference.rng_cursor);
    }

    /// Flipping any single byte of the manifest yields `CorruptManifest`
    /// and the same fallback.
    #[test]
    fn manifest_byte_flip_falls_back_to_prior_cycle(
        offset_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let (_s, store) = two_cycles("ckpt-flip-manifest");
        let mpath = store.cycle_dir(2).join("MANIFEST.txt");
        let mut bytes = fs::read(&mpath).unwrap();
        let offset = ((bytes.len() as f64 * offset_frac) as usize).min(bytes.len() - 1);
        bytes[offset] ^= 1 << bit;
        fs::write(&mpath, &bytes).unwrap();
        match store.load_cycle(2, FP, None) {
            Err(CkptError::CorruptManifest { cycle, .. }) => prop_assert_eq!(cycle, 2),
            other => prop_assert!(false, "expected CorruptManifest, got {:?}", other.map(|_| ())),
        }
        let (back, _) = store.load_latest(FP, None).unwrap().unwrap();
        prop_assert_eq!(back.cycle, 1);
    }

    /// Flipping any single byte of the aux blob (truth / free run /
    /// statistics) is detected through the manifest's aux checksum.
    #[test]
    fn aux_byte_flip_falls_back_to_prior_cycle(
        offset_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let (_s, store) = two_cycles("ckpt-flip-aux");
        let apath = store.cycle_dir(2).join("aux.bin");
        let mut bytes = fs::read(&apath).unwrap();
        let offset = ((bytes.len() as f64 * offset_frac) as usize).min(bytes.len() - 1);
        bytes[offset] ^= 1 << bit;
        fs::write(&apath, &bytes).unwrap();
        match store.load_cycle(2, FP, None) {
            Err(CkptError::CorruptManifest { cycle, .. }) => prop_assert_eq!(cycle, 2),
            other => prop_assert!(false, "expected CorruptManifest, got {:?}", other.map(|_| ())),
        }
        let (back, _) = store.load_latest(FP, None).unwrap().unwrap();
        prop_assert_eq!(back.cycle, 1);
    }
}

#[test]
fn save_load_round_trip_is_bit_exact_including_stats() {
    let scratch = ScratchDir::new("ckpt-roundtrip").unwrap();
    let store = CheckpointStore::create(scratch.path().join("ckpt")).unwrap();
    let ckpt = synthetic(4, 9);
    store.save(&ckpt, None).unwrap();
    let back = store.load_cycle(4, FP, None).unwrap();
    assert_eq!(back.analysis.states(), ckpt.analysis.states());
    assert_eq!(back.free_run.states(), ckpt.free_run.states());
    assert_eq!(back.truth, ckpt.truth);
    assert_eq!(back.stats, ckpt.stats);
    assert_eq!(back.cycle_digests, ckpt.cycle_digests);
    assert_eq!(back.rng_cursor, ckpt.rng_cursor);
    assert_eq!(back.members0, ckpt.members0);
    assert_eq!(back.seed, ckpt.seed);
}

#[test]
fn missing_manifest_means_not_durable() {
    let scratch = ScratchDir::new("ckpt-nodurable").unwrap();
    let store = CheckpointStore::create(scratch.path().join("ckpt")).unwrap();
    store.save(&synthetic(1, 2), None).unwrap();
    store.save(&synthetic(2, 3), None).unwrap();
    // Simulate a crash between the member writes and the manifest commit.
    fs::remove_file(store.cycle_dir(2).join("MANIFEST.txt")).unwrap();
    assert_eq!(store.durable_cycles().unwrap(), vec![1]);
    let (back, skipped) = store.load_latest(FP, None).unwrap().unwrap();
    assert_eq!(back.cycle, 1);
    assert!(skipped.is_empty(), "a non-durable cycle is not corruption");
}
