//! Chaos-soak conformance: multi-cycle seeded fault storms under online
//! health monitoring, on all four executors, real vs modeled.
//!
//! Each soak drives `CYCLES` assimilation cycles through a per-cycle storm
//! (rotating OST slowdown, recoverable read fault, straggler, and — from
//! cycle 1 — an unrecoverable member that forces the N−1 path) while two
//! *independent* [`HealthMonitor`]s watch the real executor and the DES
//! model. The invariants pinned here are the tentpole's contract:
//!
//! 1. **Digest identity** — per cycle, the real and modeled trace digests
//!    and fault-log digests are byte-identical, *including* the adaptive
//!    decisions (read reordering, speculation, retry schedules) the
//!    evolving route view injects.
//! 2. **Health conformance** — the per-cycle [`HealthSnapshot`]s and the
//!    final health-decision digests agree between the two worlds: the
//!    detector is a pure function of the observed spans and the seed.
//! 3. **Replay** — re-running the identical storm from scratch reproduces
//!    every artifact bit for bit (no wall-clock leaks into any decision).
//! 4. **No stalls, typed errors only** — every cycle completes; a storm
//!    cannot deadlock or panic an executor.
//!
//! Storms use slowdowns/read-faults/stragglers only: rank crashes and
//! message drops make a single-cycle run incompletable, which the models
//! reject by contract (`tests/fault_conformance.rs` covers those paths).
//! The whole suite is bounded — small mesh, microsecond backoffs — and is
//! wired into `scripts/check.sh` and CI as the chaos-soak smoke.

mod common;

use common::{harness_labeled, TenantMix, SENKF};
use s_enkf::core::{BatchedKernel, LocalAnalysis};
use s_enkf::fault::{seeded_unit, FaultConfig, FaultPlan, RetryPolicy};
use s_enkf::grid::{LocalizationRadius, Mesh};
use s_enkf::parallel::{
    model_campaign_adaptive, model_denkf_adaptive, model_lenkf_adaptive, model_penkf_adaptive,
    model_senkf_adaptive, AssimilationSetup, CampaignCtx, CampaignExecutor, CampaignModelPlan,
    DEnkf, LEnkf, ModelConfig, ModelVariant, PEnkf, SEnkf,
};
use s_enkf::prelude::{HealthMonitor, HealthParams, HealthSnapshot};
use s_enkf::tuning::Workload;

const MESH: (usize, usize) = (24, 12);
const MEMBERS: usize = 4;
const H: u64 = 8;
const RADIUS: LocalizationRadius = LocalizationRadius { xi: 1, eta: 1 };
const CYCLES: usize = 3;
const STORM_SEED: u64 = 2026;

fn model_cfg() -> ModelConfig {
    let mut cfg = ModelConfig::paper();
    cfg.workload = Workload {
        nx: MESH.0,
        ny: MESH.1,
        members: MEMBERS,
        h: H,
        xi: RADIUS.xi,
        eta: RADIUS.eta,
    };
    cfg
}

/// Deadline-budgeted, seeded-jittered retry — microsecond backoffs keep
/// the soak fast while still exercising the jitter and budget arithmetic.
fn storm_retry() -> RetryPolicy {
    RetryPolicy {
        max_retries: 3,
        base_backoff: 1e-6,
        multiplier: 2.0,
        ..RetryPolicy::default()
    }
    .with_jitter(STORM_SEED, 0.25)
    .with_deadline(1.0)
}

/// The storm for one cycle of the soak: everything is a pure function of
/// `(STORM_SEED, cycle)`. A rotating OST degrades hard enough to trip the
/// suspicion threshold, one member's reads fail recoverably, one rank
/// straggles, and from cycle 1 a member is outright unrecoverable so the
/// degraded N−1 path stays under test while the route view evolves.
fn storm(cycle: usize) -> FaultPlan {
    let u = |i: u64| seeded_unit(STORM_SEED, cycle as u64 * 16 + i);
    let slow_ost = (u(0) * 6.0) as usize;
    let mut plan = FaultPlan::new(STORM_SEED)
        .with_ost_slowdown(slow_ost, 2.5 + 2.0 * u(1))
        .with_read_fault(cycle % MEMBERS, 1 + (u(2) * 2.0) as u32)
        .with_straggler(cycle % 4, 1.3 + 0.7 * u(3));
    if cycle >= 1 {
        plan = plan.with_unrecoverable_member(3);
    }
    plan
}

fn storm_cfg(cycle: usize) -> FaultConfig {
    FaultConfig::degraded(storm(cycle)).with_retry(storm_retry())
}

/// Artifacts one soak run produces, for the replay assertion.
#[derive(Debug, PartialEq)]
struct SoakArtifacts {
    cycle_trace_digests: Vec<String>,
    cycle_fault_digests: Vec<String>,
    snapshots: Vec<HealthSnapshot>,
    health_digest: String,
}

/// Run the multi-cycle storm on one executor, real vs model, with two
/// independent monitors stepped identically, asserting per-cycle digest
/// identity and health conformance. Returns the real-side artifacts.
fn soak<R, M>(label: &str, real: R, model: M) -> SoakArtifacts
where
    R: Fn(
        &AssimilationSetup<'_>,
        &FaultConfig,
        Option<&HealthMonitor>,
    ) -> (s_enkf::trace::Trace, s_enkf::fault::FaultLog),
    M: Fn(
        &ModelConfig,
        &FaultConfig,
        Option<&HealthMonitor>,
    ) -> (s_enkf::trace::Trace, s_enkf::fault::FaultLog),
{
    let mesh = Mesh::new(MESH.0, MESH.1);
    let h = harness_labeled(label, mesh, MEMBERS, 42, 1);
    let setup = AssimilationSetup {
        store: &h.store,
        members: MEMBERS,
        observations: &h.scenario.observations,
        analysis: LocalAnalysis::new(RADIUS),
    };
    let cfg = model_cfg();
    let mut real_mon = HealthMonitor::new(HealthParams::default());
    let mut model_mon = HealthMonitor::new(HealthParams::default());
    let mut arts = SoakArtifacts {
        cycle_trace_digests: Vec::new(),
        cycle_fault_digests: Vec::new(),
        snapshots: Vec::new(),
        health_digest: String::new(),
    };
    for cycle in 0..CYCLES {
        let fcfg = storm_cfg(cycle);
        let (rt, rl) = real(&setup, &fcfg, Some(&real_mon));
        let (mt, ml) = model(&cfg, &fcfg, Some(&model_mon));
        assert_eq!(
            rt.digest(),
            mt.digest(),
            "{label}: cycle {cycle} trace digest diverged"
        );
        assert_eq!(
            rl.digest(),
            ml.digest(),
            "{label}: cycle {cycle} fault-log digest diverged"
        );
        let rs = real_mon.end_cycle();
        let ms = model_mon.end_cycle();
        assert_eq!(rs, ms, "{label}: cycle {cycle} health snapshot diverged");
        arts.cycle_trace_digests.push(rt.digest());
        arts.cycle_fault_digests.push(rl.digest());
        arts.snapshots.push(rs);
    }
    assert_eq!(
        real_mon.digest(),
        model_mon.digest(),
        "{label}: health-decision digests diverged"
    );
    // The storm must actually have exercised the adaptive machinery.
    assert!(
        arts.snapshots.iter().any(|s| !s.is_clean()),
        "{label}: the storm never degraded anything — soak is vacuous"
    );
    arts.health_digest = real_mon.digest();
    arts
}

fn assert_replays(label: &str, a: SoakArtifacts, b: SoakArtifacts) {
    assert_eq!(a, b, "{label}: same-seed replay is not bit-exact");
}

#[test]
fn chaos_soak_lenkf() {
    let run = |l: &str| {
        soak(
            l,
            |s, f, m| {
                let (_, _, t, log) = LEnkf { nsdx: 2, nsdy: 2 }.run_adaptive(s, f, m).unwrap();
                (t, log)
            },
            |c, f, m| {
                let (_, t, log) = model_lenkf_adaptive(c, 2, 2, f, m).unwrap();
                (t, log)
            },
        )
    };
    assert_replays("lenkf", run("soak-lenkf-a"), run("soak-lenkf-b"));
}

#[test]
fn chaos_soak_penkf() {
    let run = |l: &str| {
        soak(
            l,
            |s, f, m| {
                let (_, _, t, log) = PEnkf { nsdx: 2, nsdy: 2 }.run_adaptive(s, f, m).unwrap();
                (t, log)
            },
            |c, f, m| {
                let (_, t, log) = model_penkf_adaptive(c, 2, 2, f, m).unwrap();
                (t, log)
            },
        )
    };
    assert_replays("penkf", run("soak-penkf-a"), run("soak-penkf-b"));
}

#[test]
fn chaos_soak_senkf() {
    let run = |l: &str| {
        soak(
            l,
            |s, f, m| {
                let (_, _, t, log) = SEnkf::new(SENKF).run_adaptive(s, f, m).unwrap();
                (t, log)
            },
            |c, f, m| {
                let (_, t, log) = model_senkf_adaptive(c, SENKF, f, m).unwrap();
                (t, log)
            },
        )
    };
    assert_replays("senkf", run("soak-senkf-a"), run("soak-senkf-b"));
}

#[test]
fn chaos_soak_denkf() {
    let run = |l: &str| {
        soak(
            l,
            |s, f, m| {
                let (_, _, t, log) = DEnkf {
                    shards: 4,
                    kernel: BatchedKernel::Cholesky,
                }
                .run_adaptive(s, f, m)
                .unwrap();
                (t, log)
            },
            |c, f, m| {
                let (_, t, log) = model_denkf_adaptive(c, 4, f, m).unwrap();
                (t, log)
            },
        )
    };
    assert_replays("denkf", run("soak-denkf-a"), run("soak-denkf-b"));
}

/// Campaign-level conformance: a supervised real campaign with
/// [`CampaignCtx::health`] against [`model_campaign_adaptive`] with its
/// own monitor, under one constant storm. Per-cycle executor-trace
/// digests, health snapshots, and the health-decision digests must all
/// agree — the supervisor and the campaign model weave the monitor into
/// the cycle loop identically.
#[test]
fn chaos_soak_campaign_real_vs_model() {
    let mix = TenantMix::small();
    let campaign = mix.campaign_cfg(CYCLES);
    // One storm for the whole campaign (the campaign projects its plan per
    // cycle; without cycle crashes every projection is identical).
    let fcfg = storm_cfg(0);
    let (_scratch, work, ckpt) = mix.stores("soak-campaign");
    let ctx = CampaignCtx {
        health: Some(HealthParams::default()),
        ..CampaignCtx::default()
    };
    let exec = CampaignExecutor::SEnkf(SENKF);
    let report = s_enkf::parallel::run_campaign_ctx(&work, &ckpt, &exec, &campaign, &fcfg, &ctx)
        .expect("real adaptive campaign");

    let mut model_mon = HealthMonitor::new(HealthParams::default());
    let plan = CampaignModelPlan {
        cycles: CYCLES,
        checkpoint: true,
        pipelined: false,
        restart: campaign.restart,
    };
    let (out, _trace) = model_campaign_adaptive(
        &mix.model_cfg(),
        &ModelVariant::SEnkf(SENKF),
        &plan,
        &fcfg,
        Some(&mut model_mon),
    )
    .expect("modeled adaptive campaign");

    assert_eq!(
        report.cycle_digests, out.cycle_digests,
        "per-cycle executor digests diverged between supervisor and model"
    );
    assert_eq!(
        report.health_snapshots, out.health_snapshots,
        "per-cycle health snapshots diverged"
    );
    assert_eq!(
        report.health_digest.as_deref(),
        Some(model_mon.digest()).as_deref(),
        "campaign health-decision digests diverged"
    );
    assert!(
        report.health_snapshots.iter().any(|s| !s.is_clean()),
        "campaign storm never degraded anything — soak is vacuous"
    );
}
