//! End-to-end assimilation quality through the full parallel stack: write
//! files, run S-EnKF with real ranks and helper threads, and verify the
//! statistical properties data assimilation is supposed to deliver.

use s_enkf::core::{serial_enkf, LocalAnalysis};
use s_enkf::data::{read_ensemble, write_ensemble, ScenarioBuilder, SmoothFieldGenerator};
use s_enkf::grid::{FileLayout, LocalizationRadius, Mesh};
use s_enkf::parallel::{AssimilationSetup, SEnkf};
use s_enkf::pfs::{FileStore, ScratchDir};
use s_enkf::tuning::Params;

#[test]
fn parallel_assimilation_reduces_error_against_truth() {
    let mesh = Mesh::new(30, 18);
    let members = 20;
    let scenario = ScenarioBuilder::new(mesh)
        .members(members)
        .observation_stride(2)
        .obs_noise_std(0.1)
        .field_generator(SmoothFieldGenerator {
            modes: 4,
            max_wavenumber: 2,
            amplitude: 1.0,
            nugget: 0.2,
        })
        .seed(9)
        .build();
    let scratch = ScratchDir::new("quality").unwrap();
    let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 8)).unwrap();
    write_ensemble(&store, &scenario.ensemble).unwrap();

    let radius = LocalizationRadius { xi: 2, eta: 2 };
    let setup = AssimilationSetup {
        store: &store,
        members,
        observations: &scenario.observations,
        analysis: LocalAnalysis::new(radius),
    };
    let senkf = SEnkf::new(Params {
        nsdx: 3,
        nsdy: 3,
        layers: 2,
        ncg: 2,
    });
    let (analysis, report) = senkf.run(&setup).unwrap();

    let before = scenario.rmse_background();
    let after = scenario.rmse_of(&analysis);
    assert!(after < before * 0.8, "rmse {before} -> {after}");
    assert!(report.wall_time > 0.0);
    assert_eq!(report.num_compute_ranks, 9);
    assert_eq!(report.num_io_ranks, 6);
}

#[test]
fn analysis_tightens_ensemble_spread_at_observed_points() {
    // Assimilation must reduce the ensemble variance where information was
    // injected.
    let mesh = Mesh::new(20, 12);
    let members = 16;
    let scenario = ScenarioBuilder::new(mesh)
        .members(members)
        .observation_stride(2)
        .seed(13)
        .build();
    let radius = LocalizationRadius { xi: 2, eta: 2 };
    let analysis = serial_enkf(&scenario.ensemble, &scenario.observations, radius).unwrap();

    let spread = |e: &s_enkf::core::Ensemble, idx: usize| {
        let mean: f64 = (0..members).map(|k| e.states()[(idx, k)]).sum::<f64>() / members as f64;
        (0..members)
            .map(|k| (e.states()[(idx, k)] - mean).powi(2))
            .sum::<f64>()
            / (members - 1) as f64
    };

    let mut tightened = 0usize;
    let obs_points = scenario.observations.operator().network().points().to_vec();
    for &p in &obs_points {
        let idx = mesh.index(p);
        if spread(&analysis, idx) < spread(&scenario.ensemble, idx) {
            tightened += 1;
        }
    }
    assert!(
        tightened * 10 >= obs_points.len() * 9,
        "spread reduced at only {tightened}/{} observed points",
        obs_points.len()
    );
}

#[test]
fn file_roundtrip_preserves_background_exactly() {
    let mesh = Mesh::new(16, 10);
    let members = 6;
    let scenario = ScenarioBuilder::new(mesh).members(members).seed(3).build();
    let scratch = ScratchDir::new("roundtrip").unwrap();
    let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 16)).unwrap();
    write_ensemble(&store, &scenario.ensemble).unwrap();
    let back = read_ensemble(&store, members).unwrap();
    assert_eq!(
        back.states(),
        scenario.ensemble.states(),
        "bit-exact roundtrip"
    );
    assert_eq!(store.num_members(), members);
}

#[test]
fn perturbed_observations_are_reproducible_across_processes_of_any_layout() {
    // The same (seed, member-count) schema must yield identical Y^s rows no
    // matter which region asks for them — the property distributed ranks
    // rely on.
    let mesh = Mesh::new(24, 12);
    let scenario = ScenarioBuilder::new(mesh).members(10).seed(77).build();
    let full = s_enkf::grid::RegionRect::full(mesh);
    let left = s_enkf::grid::RegionRect::new(0, 12, 0, 12);
    let global = scenario.observations.localize(&full);
    let local = scenario.observations.localize(&left);
    // Every local row must equal the corresponding global row.
    for (r, &row_idx) in local.local_rows.iter().enumerate() {
        let p = left.point_at(row_idx);
        let global_r = global
            .local_rows
            .iter()
            .position(|&g| full.point_at(g) == p)
            .expect("observation present globally");
        assert_eq!(local.perturbed.row(r), global.perturbed.row(global_r));
    }
}
