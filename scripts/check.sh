#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml — run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> failure injection and cross-executor conformance suites"
cargo test -q --test failure_injection --test fault_resilience \
  --test fault_conformance --test trace_conformance

echo "==> durability suites: checkpoint corruption + kill-at-random-cycle resume"
echo "    (campaign_conformance covers sync AND pipelined commit modes,"
echo "     incl. torn in-flight async writes and cross-mode resumes)"
cargo test -q --test checkpoint_restart --test campaign_conformance
cargo test -q -p enkf-ckpt

echo "==> D-EnKF conformance: digest identity, degradation, kill-resume, SMW equivalence"
cargo test -q --test denkf_conformance --test cross_variant_equivalence

echo "==> chaos-soak smoke: multi-cycle fault storms under health monitoring,"
echo "    real-vs-DES digest identity + bit-exact replay, all four executors"
cargo test -q --test chaos_soak
cargo test -q -p enkf-health -p enkf-fault

echo "==> scheduler suites: fair-share properties + multi-tenant isolation"
cargo test -q -p enkf-sched
cargo test -q --test scheduler_conformance

echo "==> allocation regression: steady-state data plane is alloc-free (release)"
cargo test -q --release --test dataplane_alloc_free

echo "==> kernel conformance matrix: default / fast-math / no-SIMD features"
cargo test -q -p enkf-linalg
cargo test -q -p enkf-linalg --features fast-math
cargo test -q -p enkf-linalg --no-default-features

echo "==> cargo bench --workspace --no-run"
cargo bench --workspace --no-run

echo "All checks passed."
