#!/usr/bin/env bash
# Benchmark runner emitting BENCH_PR5.json at the repo root.
#
# Runs the fig14-style campaign MTTR sweep on the DES model at paper
# scale: virtual time-to-completion of a 16-cycle supervised assimilation
# campaign versus injected crash count, with the checkpoint recovery line
# (bounded loss per crash: partial attempt + backoff + one restore sweep)
# and without it (a crash restarts the whole campaign from cycle 0).
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_PR5.json
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "==> campaign_mttr (paper-scale checkpointed-campaign MTTR sweep)"
cargo run -q --release -p enkf-bench --bin campaign_mttr | tee "$tmp/mttr.txt"

# campaign_mttr prints one machine-readable line per sweep point:
#   MTTR crashes=2 cycles=16 clean_s=... ckpt_s=... nockpt_s=... \
#        ckpt_lost_s=... nockpt_lost_s=... nockpt_over_ckpt=...
awk '
  $1 == "MTTR" {
    for (i = 2; i <= NF; i++) { split($i, kv, "="); v[kv[1]] = kv[2] }
    printf "    { \"crashes\": %s, \"with_ckpt_s\": %s, \"without_ckpt_s\": %s,",
      v["crashes"], v["ckpt_s"], v["nockpt_s"]
    printf " \"lost_with_ckpt_s\": %s, \"lost_without_ckpt_s\": %s, \"slowdown_without_ckpt\": %s },\n",
      v["ckpt_lost_s"], v["nockpt_lost_s"], v["nockpt_over_ckpt"]
  }
' "$tmp/mttr.txt" >"$tmp/sweep.txt"
sed -i '$ s/ },$/ }/' "$tmp/sweep.txt"

clean_s=$(awk '$1 == "MTTR" { for (i=2;i<=NF;i++) { split($i,kv,"="); v[kv[1]]=kv[2] } print v["clean_s"]; exit }' "$tmp/mttr.txt")
cycles=$(awk '$1 == "MTTR" { for (i=2;i<=NF;i++) { split($i,kv,"="); v[kv[1]]=kv[2] } print v["cycles"]; exit }' "$tmp/mttr.txt")

{
  cat <<HEADER
{
  "benchmark": "PR5: durable checkpoint/restart — campaign MTTR sweep (fig14-style)",
  "model": "DES, paper-scale S-EnKF (autotuned at 8000 processors)",
  "cycles": $cycles,
  "clean_campaign_s": $clean_s,
  "sweep": [
HEADER
  cat "$tmp/sweep.txt"
  cat <<'FOOTER'
  ]
}
FOOTER
} >"$out"

echo "wrote $out"
