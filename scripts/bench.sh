#!/usr/bin/env bash
# Microbenchmark runner emitting BENCH_PR2.json at the repo root.
#
# Runs the criterion microbenches (letkf_pointwise, obs_localize, and the
# local_analysis cases of kernels) plus the fig09 --tiny end-to-end smoke
# workload, and records the results next to the frozen "before" numbers
# captured immediately before the batched-LETKF / observation-index work,
# so the perf trajectory lives in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_PR2.json
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

for b in letkf_pointwise obs_localize kernels; do
  echo "==> cargo bench -p enkf-bench --bench $b"
  cargo bench -q -p enkf-bench --bench "$b" | tee -a "$tmp/bench.txt"
done

echo "==> fig09 --tiny"
t0=$SECONDS
cargo run -q --release -p enkf-bench --bin fig09_phase_breakdown -- --tiny \
  >"$tmp/fig09.txt"
fig09_secs=$((SECONDS - t0))

# The criterion shim prints "group: <g>" then "  <id>: <duration>/iter over
# N iters" per case; flatten to "group/id": "duration" JSON entries.
awk '
  /^group: / { group = $2; next }
  /\/iter over / {
    id = $1; sub(/:$/, "", id)
    val = $2; sub(/\/iter$/, "", val)
    printf "    \"%s/%s\": \"%s\",\n", group, id, val
  }
' "$tmp/bench.txt" >"$tmp/after.txt"
sed -i '$ s/,$//' "$tmp/after.txt"

{
  cat <<'HEADER'
{
  "benchmark": "PR2: allocation-free batched LETKF kernel + spatially-indexed observation localization",
  "iterations_per_case": 20,
  "before": {
    "letkf_pointwise/mesh16x16_stride2": "34.870379ms",
    "letkf_pointwise/mesh16x16_stride4": "13.640705ms",
    "letkf_pointwise/mesh32x32_stride2": "150.826905ms",
    "letkf_pointwise/mesh32x32_stride4": "60.008587ms",
    "obs_localize/localize_mesh64_stride2": "95.755µs",
    "obs_localize/sub_localize_mesh64_stride2": "957.54µs",
    "obs_localize/localize_mesh64_stride4": "21.637µs",
    "obs_localize/sub_localize_mesh64_stride4": "272.954µs",
    "obs_localize/localize_mesh128_stride2": "448.994µs",
    "obs_localize/sub_localize_mesh128_stride2": "11.101655ms",
    "local_analysis/pointwise_12x12_subdomain": "13.836046ms",
    "local_analysis/blocked_12x12_subdomain": "3.078175ms"
  },
  "after": {
HEADER
  cat "$tmp/after.txt"
  cat <<FOOTER
  },
  "fig09_tiny_seconds": $fig09_secs
}
FOOTER
} >"$out"

echo "wrote $out"
