#!/usr/bin/env bash
# Microbenchmark runner emitting BENCH_PR4.json at the repo root.
#
# Runs the pfs_reading data-plane microbenches (pooled vs fresh reads,
# view vs owned bar splitting, read-ahead on vs off), the
# dataplane_readphase fig05/fig10-shaped before/after read-phase sweeps,
# and the release-mode counting-allocator proof that the steady-state
# read → scatter → analyze cycle performs zero heap allocations.
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_PR4.json
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "==> cargo bench -p enkf-bench --bench pfs_reading"
cargo bench -q -p enkf-bench --bench pfs_reading | tee "$tmp/bench.txt"

echo "==> dataplane_readphase (fig05/fig10-shaped read-phase sweeps)"
cargo run -q --release -p enkf-bench --bin dataplane_readphase \
  | tee "$tmp/readphase.txt"

echo "==> zero-allocation steady state (release)"
if cargo test -q --release --test dataplane_alloc_free >"$tmp/alloc.txt" 2>&1; then
  alloc_free=true
else
  alloc_free=false
  cat "$tmp/alloc.txt"
fi

# The criterion shim prints "group: <g>" then "  <id>: <duration>/iter over
# N iters" per case; flatten to "group/id": "duration" JSON entries, and
# keep a ns-normalized value per id for the speedup ratios below.
awk '
  function ns(v,   num, unit) {
    num = v; sub(/[a-zµ]+$/, "", num)
    unit = v; sub(/^[0-9.]+/, "", unit)
    if (unit == "ns") return num + 0
    if (unit == "µs" || unit == "us") return num * 1e3
    if (unit == "ms") return num * 1e6
    return num * 1e9
  }
  /^group: / { group = $2; next }
  /\/iter over / {
    id = $1; sub(/:$/, "", id)
    val = $2; sub(/\/iter$/, "", val)
    printf "    \"%s/%s\": \"%s\",\n", group, id, val > micro
    printf "%s %.3f\n", id, ns(val) > times
  }
' micro="$tmp/micro.txt" times="$tmp/times.txt" "$tmp/bench.txt"
sed -i '$ s/,$//' "$tmp/micro.txt"

t() { awk -v id="$1" '$1 == id { print $2 }' "$tmp/times.txt"; }
ratio() { awk -v a="$1" -v b="$2" 'BEGIN { printf "%.2f", a / b }'; }

pooled_speedup=$(ratio "$(t fresh_read)" "$(t pooled_read)")
view_speedup=$(ratio "$(t owned_split)" "$(t view_split)")
readahead_speedup=$(ratio "$(t readahead_off)" "$(t readahead_on)")

# dataplane_readphase prints one machine-readable line per sweep point:
#   DATAPLANE fig05 nsdx=2 before_ms=1.54 after_ms=0.71 speedup=2.18
sweep_json() {
  awk -v fig="$1" -v key="$2" '
    $1 == "DATAPLANE" && $2 == fig {
      split($3, p, "="); split($4, b, "="); split($5, a, "="); split($6, s, "=")
      printf "      { \"%s\": %s, \"before_ms\": %s, \"after_ms\": %s, \"speedup\": %s },\n", \
        key, p[2], b[2], a[2], s[2]
    }
  ' "$tmp/readphase.txt" | sed '$ s/ },$/ }/'
}

{
  cat <<'HEADER'
{
  "benchmark": "PR4: zero-copy data plane (pooled buffers, region views, read-ahead pipelining)",
  "iterations_per_case": 20,
  "micro": {
HEADER
  cat "$tmp/micro.txt"
  cat <<MID
  },
  "speedups": {
    "pooled_read_vs_fresh": $pooled_speedup,
    "view_split_vs_owned": $view_speedup,
    "readahead_on_vs_off": $readahead_speedup
  },
  "readphase": {
    "fig05_block_reading": [
MID
  sweep_json fig05 nsdx
  cat <<MID2
    ],
    "fig10_staged_group_reading": [
MID2
  sweep_json fig10 layers
  cat <<FOOTER
    ]
  },
  "alloc_free_steady_state": $alloc_free
}
FOOTER
} >"$out"

echo "wrote $out"
