#!/usr/bin/env bash
# Microbenchmark runner emitting BENCH_PR3.json at the repo root.
#
# Runs the criterion microbenches (letkf_pointwise, obs_localize, and the
# local_analysis cases of kernels), the fig09 --tiny end-to-end smoke
# workload, and the fig14 fault-resilience smoke sweep with its
# zero-overhead check (the no-fault fault path must produce byte-identical
# digests and no measurable wall-clock cost over the plain path).
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_PR3.json
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

for b in letkf_pointwise obs_localize kernels; do
  echo "==> cargo bench -p enkf-bench --bench $b"
  cargo bench -q -p enkf-bench --bench "$b" | tee -a "$tmp/bench.txt"
done

echo "==> fig09 --tiny"
t0=$SECONDS
cargo run -q --release -p enkf-bench --bin fig09_phase_breakdown -- --tiny \
  >"$tmp/fig09.txt"
fig09_secs=$((SECONDS - t0))

echo "==> fig14 --tiny --check-overhead"
t0=$SECONDS
cargo run -q --release -p enkf-bench --bin fig14_fault_resilience -- \
  --tiny --check-overhead | tee "$tmp/fig14.txt"
fig14_secs=$((SECONDS - t0))

# fig14 prints one machine-readable line:
#   zero_overhead digests_equal=true plain_ms=… faulted_ms=… overhead=…%
zo_line=$(grep '^zero_overhead ' "$tmp/fig14.txt")
zo_equal=$(sed -n 's/.*digests_equal=\([a-z]*\).*/\1/p' <<<"$zo_line")
zo_plain=$(sed -n 's/.*plain_ms=\([0-9.]*\).*/\1/p' <<<"$zo_line")
zo_faulted=$(sed -n 's/.*faulted_ms=\([0-9.]*\).*/\1/p' <<<"$zo_line")
zo_overhead=$(sed -n 's/.*overhead=\([-+0-9.]*\)%.*/\1/p' <<<"$zo_line")

# The criterion shim prints "group: <g>" then "  <id>: <duration>/iter over
# N iters" per case; flatten to "group/id": "duration" JSON entries.
awk '
  /^group: / { group = $2; next }
  /\/iter over / {
    id = $1; sub(/:$/, "", id)
    val = $2; sub(/\/iter$/, "", val)
    printf "    \"%s/%s\": \"%s\",\n", group, id, val
  }
' "$tmp/bench.txt" >"$tmp/micro.txt"
sed -i '$ s/,$//' "$tmp/micro.txt"

{
  cat <<'HEADER'
{
  "benchmark": "PR3: deterministic fault injection + resilient execution (enkf-fault)",
  "iterations_per_case": 20,
  "micro": {
HEADER
  cat "$tmp/micro.txt"
  cat <<FOOTER
  },
  "fig09_tiny_seconds": $fig09_secs,
  "fig14_tiny_seconds": $fig14_secs,
  "zero_overhead_check": {
    "digests_equal": $zo_equal,
    "plain_ms": $zo_plain,
    "faulted_ms": $zo_faulted,
    "overhead_pct": $zo_overhead
  }
}
FOOTER
} >"$out"

echo "wrote $out"
