#!/usr/bin/env bash
# Benchmark runner emitting BENCH_PR5.json and BENCH_PR6.json at the
# repo root.
#
# PR5: the fig14-style campaign MTTR sweep on the DES model at paper
# scale: virtual time-to-completion of a 16-cycle supervised assimilation
# campaign versus injected crash count, with the checkpoint recovery line
# (bounded loss per crash: partial attempt + backoff + one restore sweep)
# and without it (a crash restarts the whole campaign from cycle 0).
#
# PR6: the scheduler fairness sweep: aggregate throughput and p99
# campaign latency versus tenant count, with fair-share admission on
# (SLA-gated weighted max-min) and off (equal-split packing).
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_PR5.json
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "==> campaign_mttr (paper-scale checkpointed-campaign MTTR sweep)"
cargo run -q --release -p enkf-bench --bin campaign_mttr | tee "$tmp/mttr.txt"

# campaign_mttr prints one machine-readable line per sweep point:
#   MTTR crashes=2 cycles=16 clean_s=... ckpt_s=... nockpt_s=... \
#        ckpt_lost_s=... nockpt_lost_s=... nockpt_over_ckpt=...
awk '
  $1 == "MTTR" {
    for (i = 2; i <= NF; i++) { split($i, kv, "="); v[kv[1]] = kv[2] }
    printf "    { \"crashes\": %s, \"with_ckpt_s\": %s, \"without_ckpt_s\": %s,",
      v["crashes"], v["ckpt_s"], v["nockpt_s"]
    printf " \"lost_with_ckpt_s\": %s, \"lost_without_ckpt_s\": %s, \"slowdown_without_ckpt\": %s },\n",
      v["ckpt_lost_s"], v["nockpt_lost_s"], v["nockpt_over_ckpt"]
  }
' "$tmp/mttr.txt" >"$tmp/sweep.txt"
sed -i '$ s/ },$/ }/' "$tmp/sweep.txt"

clean_s=$(awk '$1 == "MTTR" { for (i=2;i<=NF;i++) { split($i,kv,"="); v[kv[1]]=kv[2] } print v["clean_s"]; exit }' "$tmp/mttr.txt")
cycles=$(awk '$1 == "MTTR" { for (i=2;i<=NF;i++) { split($i,kv,"="); v[kv[1]]=kv[2] } print v["cycles"]; exit }' "$tmp/mttr.txt")

{
  cat <<HEADER
{
  "benchmark": "PR5: durable checkpoint/restart — campaign MTTR sweep (fig14-style)",
  "model": "DES, paper-scale S-EnKF (autotuned at 8000 processors)",
  "cycles": $cycles,
  "clean_campaign_s": $clean_s,
  "sweep": [
HEADER
  cat "$tmp/sweep.txt"
  cat <<'FOOTER'
  ]
}
FOOTER
} >"$out"

echo "wrote $out"

out6=BENCH_PR6.json

echo "==> scheduler_fairness (multi-tenant fair-share admission sweep)"
cargo run -q --release -p enkf-bench --bin scheduler_fairness | tee "$tmp/sched.txt"

# scheduler_fairness prints one machine-readable line per sweep point:
#   SCHED tenants=4 policy=fair jobs=8 completed=8 rejected=0 \
#         makespan_s=... throughput_cph=... p99_service_s=... p99_over_solo=...
awk '
  $1 == "SCHED" {
    for (i = 2; i <= NF; i++) { split($i, kv, "="); v[kv[1]] = kv[2] }
    printf "    { \"tenants\": %s, \"policy\": \"%s\", \"jobs\": %s, \"completed\": %s,",
      v["tenants"], v["policy"], v["jobs"], v["completed"]
    printf " \"rejected\": %s, \"makespan_s\": %s, \"throughput_campaigns_per_h\": %s,",
      v["rejected"], v["makespan_s"], v["throughput_cph"]
    printf " \"p99_service_s\": %s, \"p99_over_solo\": %s },\n",
      v["p99_service_s"], v["p99_over_solo"]
  }
' "$tmp/sched.txt" >"$tmp/sched_sweep.txt"
sed -i '$ s/ },$/ }/' "$tmp/sched_sweep.txt"

fair4=$(awk '$1 == "SCHED" { for (i=2;i<=NF;i++) { split($i,kv,"="); v[kv[1]]=kv[2] }
  if (v["tenants"] == 4 && v["policy"] == "fair") { print v["p99_over_solo"]; exit } }' "$tmp/sched.txt")

{
  cat <<HEADER
{
  "benchmark": "PR6: multi-tenant campaign scheduler — fairness/SLA sweep",
  "model": "DES capacity planner, paper-scale autotuned S-EnKF campaigns, 4 cycles, 2 jobs/tenant",
  "sla": "2x solo DES prediction per campaign",
  "fair_4_tenant_p99_over_solo": $fair4,
  "sweep": [
HEADER
  cat "$tmp/sched_sweep.txt"
  cat <<'FOOTER'
  ]
}
FOOTER
} >"$out6"

echo "wrote $out6"
