#!/usr/bin/env bash
# Benchmark runner emitting BENCH_PR5.json and BENCH_PR6.json at the
# repo root.
#
# PR5: the fig14-style campaign MTTR sweep on the DES model at paper
# scale: virtual time-to-completion of a 16-cycle supervised assimilation
# campaign versus injected crash count, with the checkpoint recovery line
# (bounded loss per crash: partial attempt + backoff + one restore sweep)
# and without it (a crash restarts the whole campaign from cycle 0).
#
# PR6: the scheduler fairness sweep: aggregate throughput and p99
# campaign latency versus tenant count, with fair-share admission on
# (SLA-gated weighted max-min) and off (equal-split packing).
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_PR5.json
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "==> campaign_mttr (paper-scale checkpointed-campaign MTTR sweep)"
cargo run -q --release -p enkf-bench --bin campaign_mttr | tee "$tmp/mttr.txt"

# campaign_mttr prints one machine-readable line per sweep point:
#   MTTR crashes=2 cycles=16 clean_s=... ckpt_s=... nockpt_s=... \
#        ckpt_lost_s=... nockpt_lost_s=... nockpt_over_ckpt=...
awk '
  $1 == "MTTR" {
    for (i = 2; i <= NF; i++) { split($i, kv, "="); v[kv[1]] = kv[2] }
    printf "    { \"crashes\": %s, \"with_ckpt_s\": %s, \"without_ckpt_s\": %s,",
      v["crashes"], v["ckpt_s"], v["nockpt_s"]
    printf " \"lost_with_ckpt_s\": %s, \"lost_without_ckpt_s\": %s, \"slowdown_without_ckpt\": %s },\n",
      v["ckpt_lost_s"], v["nockpt_lost_s"], v["nockpt_over_ckpt"]
  }
' "$tmp/mttr.txt" >"$tmp/sweep.txt"
sed -i '$ s/ },$/ }/' "$tmp/sweep.txt"

clean_s=$(awk '$1 == "MTTR" { for (i=2;i<=NF;i++) { split($i,kv,"="); v[kv[1]]=kv[2] } print v["clean_s"]; exit }' "$tmp/mttr.txt")
cycles=$(awk '$1 == "MTTR" { for (i=2;i<=NF;i++) { split($i,kv,"="); v[kv[1]]=kv[2] } print v["cycles"]; exit }' "$tmp/mttr.txt")

{
  cat <<HEADER
{
  "benchmark": "PR5: durable checkpoint/restart — campaign MTTR sweep (fig14-style)",
  "model": "DES, paper-scale S-EnKF (autotuned at 8000 processors)",
  "cycles": $cycles,
  "clean_campaign_s": $clean_s,
  "sweep": [
HEADER
  cat "$tmp/sweep.txt"
  cat <<'FOOTER'
  ]
}
FOOTER
} >"$out"

echo "wrote $out"

out6=BENCH_PR6.json

echo "==> scheduler_fairness (multi-tenant fair-share admission sweep)"
cargo run -q --release -p enkf-bench --bin scheduler_fairness | tee "$tmp/sched.txt"

# scheduler_fairness prints one machine-readable line per sweep point:
#   SCHED tenants=4 policy=fair jobs=8 completed=8 rejected=0 \
#         makespan_s=... throughput_cph=... p99_service_s=... p99_over_solo=...
awk '
  $1 == "SCHED" {
    for (i = 2; i <= NF; i++) { split($i, kv, "="); v[kv[1]] = kv[2] }
    printf "    { \"tenants\": %s, \"policy\": \"%s\", \"jobs\": %s, \"completed\": %s,",
      v["tenants"], v["policy"], v["jobs"], v["completed"]
    printf " \"rejected\": %s, \"makespan_s\": %s, \"throughput_campaigns_per_h\": %s,",
      v["rejected"], v["makespan_s"], v["throughput_cph"]
    printf " \"p99_service_s\": %s, \"p99_over_solo\": %s },\n",
      v["p99_service_s"], v["p99_over_solo"]
  }
' "$tmp/sched.txt" >"$tmp/sched_sweep.txt"
sed -i '$ s/ },$/ }/' "$tmp/sched_sweep.txt"

fair4=$(awk '$1 == "SCHED" { for (i=2;i<=NF;i++) { split($i,kv,"="); v[kv[1]]=kv[2] }
  if (v["tenants"] == 4 && v["policy"] == "fair") { print v["p99_over_solo"]; exit } }' "$tmp/sched.txt")

{
  cat <<HEADER
{
  "benchmark": "PR6: multi-tenant campaign scheduler — fairness/SLA sweep",
  "model": "DES capacity planner, paper-scale autotuned S-EnKF campaigns, 4 cycles, 2 jobs/tenant",
  "sla": "2x solo DES prediction per campaign",
  "fair_4_tenant_p99_over_solo": $fair4,
  "sweep": [
HEADER
  cat "$tmp/sched_sweep.txt"
  cat <<'FOOTER'
  ]
}
FOOTER
} >"$out6"

echo "wrote $out6"

out7=BENCH_PR7.json

echo "==> roofline (kernel-layer GEMM/eigensolve/conversion roofline)"
cargo run -q --release -p enkf-bench --bin roofline | tee "$tmp/roof.txt"

# roofline prints one machine-readable line per measurement:
#   ROOF kind=gemm flavour=nn n=128 legacy_us=... kernel_us=... \
#        legacy_gflops=... kernel_gflops=... speedup=...
#   ROOF kind=matvec|convert|eigen|letkf|isa ...
awk '
  $1 == "ROOF" {
    delete v
    for (i = 2; i <= NF; i++) { split($i, kv, "="); v[kv[1]] = kv[2] }
    if (v["kind"] == "gemm")
      printf "    { \"flavour\": \"%s\", \"n\": %s, \"legacy_gflops\": %s, \"kernel_gflops\": %s, \"speedup\": %s },\n",
        v["flavour"], v["n"], v["legacy_gflops"], v["kernel_gflops"], v["speedup"]
  }
' "$tmp/roof.txt" >"$tmp/roof_gemm.txt"
sed -i '$ s/ },$/ }/' "$tmp/roof_gemm.txt"

awk '
  $1 == "ROOF" {
    delete v
    for (i = 2; i <= NF; i++) { split($i, kv, "="); v[kv[1]] = kv[2] }
    if (v["kind"] == "eigen")
      printf "    { \"n\": %s, \"serial_us\": %s, \"parallel_us\": %s },\n",
        v["n"], v["serial_us"], v["parallel_us"]
  }
' "$tmp/roof.txt" >"$tmp/roof_eigen.txt"
sed -i '$ s/ },$/ }/' "$tmp/roof_eigen.txt"

roof_kv() { # roof_kv <kind> <key> [extra filter key=value]
  local f="${3:-}"
  awk -v kind="$1" -v key="$2" -v f="$f" '
    $1 == "ROOF" {
      delete v
      for (i = 2; i <= NF; i++) { split($i, kv, "="); v[kv[1]] = kv[2] }
      if (v["kind"] != kind) next
      if (f != "") { split(f, fkv, "="); if (v[fkv[1]] != fkv[2]) next }
      print v[key]; exit
    }' "$tmp/roof.txt"
}

isa=$(roof_kv isa name)
fma=$(roof_kv isa fma)
threads=$(roof_kv isa threads)
letkf2=$(roof_kv letkf time_us case=mesh32x32_stride2)
letkf4=$(roof_kv letkf time_us case=mesh32x32_stride4)
mv_speed=$(roof_kv matvec speedup)
cv_gbps=$(roof_kv convert kernel_gbps)

{
  cat <<HEADER
{
  "benchmark": "PR7: kernel layer — cache-oblivious GEMM, SIMD microkernels, parallel-ordering eigensolve",
  "isa": "$isa",
  "fma_active": $fma,
  "threads": $threads,
  "letkf_pointwise_us": { "mesh32x32_stride2": $letkf2, "mesh32x32_stride4": $letkf4 },
  "letkf_pointwise_baseline_us": { "mesh32x32_stride2": 10368.689, "source": "BENCH_PR2.json (after)" },
  "matvec_speedup": $mv_speed,
  "convert_kernel_gbps": $cv_gbps,
  "gemm_roofline": [
HEADER
  cat "$tmp/roof_gemm.txt"
  cat <<'MID'
  ],
  "eigensolve_us": [
MID
  cat "$tmp/roof_eigen.txt"
  cat <<'FOOTER'
  ]
}
FOOTER
} >"$out7"

echo "wrote $out7"

out8=BENCH_PR8.json

echo "==> batched_assimilation (D-EnKF batched vs P-EnKF sequential sweep)"
cargo run -q --release -p enkf-bench --bin batched_assimilation | tee "$tmp/batch.txt"

# batched_assimilation prints one machine-readable line per sweep point:
#   BATCH stride=3 obs=720000 shards=40 batched_s=... sequential_s=... \
#         batched_over_sequential=... batched_overlap=...
awk '
  $1 == "BATCH" {
    for (i = 2; i <= NF; i++) { split($i, kv, "="); v[kv[1]] = kv[2] }
    printf "    { \"obs_stride\": %s, \"observations\": %s, \"shards\": %s,",
      v["stride"], v["obs"], v["shards"]
    printf " \"batched_s\": %s, \"sequential_s\": %s, \"batched_over_sequential\": %s, \"batched_overlap_fraction\": %s },\n",
      v["batched_s"], v["sequential_s"], v["batched_over_sequential"], v["batched_overlap"]
  }
' "$tmp/batch.txt" >"$tmp/batch_sweep.txt"
sed -i '$ s/ },$/ }/' "$tmp/batch_sweep.txt"

sparse_ratio=$(awk '$1 == "BATCH" { for (i=2;i<=NF;i++) { split($i,kv,"="); v[kv[1]]=kv[2] } print v["batched_over_sequential"]; exit }' "$tmp/batch.txt")

{
  cat <<HEADER
{
  "benchmark": "PR8: distributed-array D-EnKF — batched vs sequential assimilation sweep",
  "model": "DES, paper-scale workload on the Tianhe-2-like substrate, equal rank counts per point",
  "batched_arm": "D-EnKF: full-width bar reads, all-to-all observation-block exchange, one covariance-form transform",
  "sequential_arm": "P-EnKF: block reads + point-local analysis (observation-independent by construction)",
  "sparsest_point_batched_over_sequential": $sparse_ratio,
  "sweep": [
HEADER
  cat "$tmp/batch_sweep.txt"
  cat <<'FOOTER'
  ]
}
FOOTER
} >"$out8"

echo "wrote $out8"
