#!/usr/bin/env bash
# Benchmark runner emitting BENCH_PR{5,6,7,8,9,10}.json at the repo root.
#
# Usage: scripts/bench.sh [--only <name>]
#   --only <name>  run a single benchmark; <name> is one of
#                  campaign_mttr | scheduler_fairness | roofline |
#                  batched_assimilation | pipelined_campaign |
#                  adaptive_degradation
#
# PR5: the fig14-style campaign MTTR sweep on the DES model at paper
# scale: virtual time-to-completion of a 16-cycle supervised assimilation
# campaign versus injected crash count, with the checkpoint recovery line
# (bounded loss per crash: partial attempt + backoff + one restore sweep)
# and without it (a crash restarts the whole campaign from cycle 0).
# Checkpoint overhead is reported explicitly (exposed seconds + ratio).
#
# PR6: the scheduler fairness sweep: aggregate throughput and p99
# campaign latency versus tenant count, with fair-share admission on
# (SLA-gated weighted max-min) and off (equal-split packing).
#
# PR7: kernel-layer roofline (GEMM / eigensolve / conversion).
#
# PR8: D-EnKF batched vs P-EnKF sequential assimilation sweep.
#
# PR9: pipelined vs synchronous checkpointing — the same MTTR sweep's
# PIPE lines: clean-campaign durability overhead cut by cross-cycle
# overlap, with the crash-loss bound preserved.
#
# PR10: online health monitoring — a static (retry-only) vs adaptive
# (failure detector + OST blacklisting + speculative replica reads)
# campaign under OST slowdown storms of growing severity.
set -euo pipefail
cd "$(dirname "$0")/.."

only=""
if [[ "${1:-}" == "--only" ]]; then
  only="${2:?--only needs a benchmark name}"
elif [[ $# -gt 0 ]]; then
  echo "usage: scripts/bench.sh [--only <name>]" >&2
  exit 2
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

want() { [[ -z "$only" || "$only" == "$1" ]]; }

# campaign_mttr feeds both BENCH_PR5 (MTTR lines) and BENCH_PR9 (PIPE
# lines); run it once if either is wanted.
run_mttr_bin() {
  if [[ ! -s "$tmp/mttr.txt" ]]; then
    echo "==> campaign_mttr (paper-scale checkpointed-campaign MTTR sweep)"
    cargo run -q --release -p enkf-bench --bin campaign_mttr | tee "$tmp/mttr.txt"
  fi
}

bench_campaign_mttr() {
  local out=BENCH_PR5.json
  run_mttr_bin

  # campaign_mttr prints one machine-readable line per sweep point:
  #   MTTR crashes=2 cycles=16 clean_s=... ckpt_s=... nockpt_s=... \
  #        ckpt_lost_s=... nockpt_lost_s=... nockpt_over_ckpt=... \
  #        ckpt_overhead_s=... ckpt_overhead_ratio=...
  awk '
    $1 == "MTTR" {
      for (i = 2; i <= NF; i++) { split($i, kv, "="); v[kv[1]] = kv[2] }
      printf "    { \"crashes\": %s, \"with_ckpt_s\": %s, \"without_ckpt_s\": %s,",
        v["crashes"], v["ckpt_s"], v["nockpt_s"]
      printf " \"lost_with_ckpt_s\": %s, \"lost_without_ckpt_s\": %s, \"nockpt_over_ckpt\": %s,",
        v["ckpt_lost_s"], v["nockpt_lost_s"], v["nockpt_over_ckpt"]
      printf " \"ckpt_overhead_s\": %s, \"ckpt_overhead_ratio\": %s },\n",
        v["ckpt_overhead_s"], v["ckpt_overhead_ratio"]
    }
  ' "$tmp/mttr.txt" >"$tmp/sweep.txt"
  sed -i '$ s/ },$/ }/' "$tmp/sweep.txt"

  local clean_s cycles ovh_s ovh_ratio
  clean_s=$(awk '$1 == "MTTR" { for (i=2;i<=NF;i++) { split($i,kv,"="); v[kv[1]]=kv[2] } print v["clean_s"]; exit }' "$tmp/mttr.txt")
  cycles=$(awk '$1 == "MTTR" { for (i=2;i<=NF;i++) { split($i,kv,"="); v[kv[1]]=kv[2] } print v["cycles"]; exit }' "$tmp/mttr.txt")
  ovh_s=$(awk '$1 == "MTTR" { for (i=2;i<=NF;i++) { split($i,kv,"="); v[kv[1]]=kv[2] } print v["ckpt_overhead_s"]; exit }' "$tmp/mttr.txt")
  ovh_ratio=$(awk '$1 == "MTTR" { for (i=2;i<=NF;i++) { split($i,kv,"="); v[kv[1]]=kv[2] } print v["ckpt_overhead_ratio"]; exit }' "$tmp/mttr.txt")

  {
    cat <<HEADER
{
  "benchmark": "PR5: durable checkpoint/restart — campaign MTTR sweep (fig14-style)",
  "model": "DES, paper-scale S-EnKF (autotuned at 8000 processors)",
  "cycles": $cycles,
  "clean_campaign_s": $clean_s,
  "clean_ckpt_overhead_s": $ovh_s,
  "clean_ckpt_overhead_ratio": $ovh_ratio,
  "sweep": [
HEADER
    cat "$tmp/sweep.txt"
    cat <<'FOOTER'
  ]
}
FOOTER
  } >"$out"

  echo "wrote $out"
}

bench_pipelined_campaign() {
  local out=BENCH_PR9.json
  run_mttr_bin

  # campaign_mttr also prints one PIPE line per sweep point:
  #   PIPE crashes=2 cycles=16 sync_s=... pipe_s=... sync_overhead_s=... \
  #        pipe_overhead_s=... overhead_cut=... hidden_s=... exposed_s=... \
  #        trace_hidden_frac=... sync_lost_s=... pipe_lost_s=...
  awk '
    $1 == "PIPE" {
      for (i = 2; i <= NF; i++) { split($i, kv, "="); v[kv[1]] = kv[2] }
      printf "    { \"crashes\": %s, \"sync_s\": %s, \"pipelined_s\": %s,",
        v["crashes"], v["sync_s"], v["pipe_s"]
      printf " \"sync_overhead_s\": %s, \"pipelined_overhead_s\": %s, \"overhead_cut\": %s,",
        v["sync_overhead_s"], v["pipe_overhead_s"], v["overhead_cut"]
      printf " \"hidden_s\": %s, \"exposed_s\": %s, \"trace_hidden_fraction\": %s,",
        v["hidden_s"], v["exposed_s"], v["trace_hidden_frac"]
      printf " \"sync_lost_s\": %s, \"pipelined_lost_s\": %s },\n",
        v["sync_lost_s"], v["pipe_lost_s"]
    }
  ' "$tmp/mttr.txt" >"$tmp/pipe_sweep.txt"
  sed -i '$ s/ },$/ }/' "$tmp/pipe_sweep.txt"

  local cycles sync0 pipe0 cut0 hidden0
  cycles=$(awk '$1 == "PIPE" { for (i=2;i<=NF;i++) { split($i,kv,"="); v[kv[1]]=kv[2] } print v["cycles"]; exit }' "$tmp/mttr.txt")
  sync0=$(awk '$1 == "PIPE" { for (i=2;i<=NF;i++) { split($i,kv,"="); v[kv[1]]=kv[2] } print v["sync_overhead_s"]; exit }' "$tmp/mttr.txt")
  pipe0=$(awk '$1 == "PIPE" { for (i=2;i<=NF;i++) { split($i,kv,"="); v[kv[1]]=kv[2] } print v["pipe_overhead_s"]; exit }' "$tmp/mttr.txt")
  cut0=$(awk '$1 == "PIPE" { for (i=2;i<=NF;i++) { split($i,kv,"="); v[kv[1]]=kv[2] } print v["overhead_cut"]; exit }' "$tmp/mttr.txt")
  hidden0=$(awk '$1 == "PIPE" { for (i=2;i<=NF;i++) { split($i,kv,"="); v[kv[1]]=kv[2] } print v["trace_hidden_frac"]; exit }' "$tmp/mttr.txt")

  {
    cat <<HEADER
{
  "benchmark": "PR9: pipelined campaign engine — async checkpointing + cross-cycle overlap",
  "model": "DES, paper-scale S-EnKF (autotuned at 8000 processors), 16-cycle campaign",
  "sync_arm": "every checkpoint sweep on the critical path (PR5 recovery line)",
  "pipelined_arm": "background writer overlaps cycle k commit with cycle k+1; at most one in flight; drain before restore and at campaign end",
  "cycles": $cycles,
  "clean_sync_overhead_s": $sync0,
  "clean_pipelined_overhead_s": $pipe0,
  "clean_overhead_reduction": $cut0,
  "clean_trace_hidden_fraction": $hidden0,
  "sweep": [
HEADER
    cat "$tmp/pipe_sweep.txt"
    cat <<'FOOTER'
  ]
}
FOOTER
  } >"$out"

  echo "wrote $out"
}

bench_scheduler_fairness() {
  local out=BENCH_PR6.json

  echo "==> scheduler_fairness (multi-tenant fair-share admission sweep)"
  cargo run -q --release -p enkf-bench --bin scheduler_fairness | tee "$tmp/sched.txt"

  # scheduler_fairness prints one machine-readable line per sweep point:
  #   SCHED tenants=4 policy=fair jobs=8 completed=8 rejected=0 \
  #         makespan_s=... throughput_cph=... p99_service_s=... p99_over_solo=...
  awk '
    $1 == "SCHED" {
      for (i = 2; i <= NF; i++) { split($i, kv, "="); v[kv[1]] = kv[2] }
      printf "    { \"tenants\": %s, \"policy\": \"%s\", \"jobs\": %s, \"completed\": %s,",
        v["tenants"], v["policy"], v["jobs"], v["completed"]
      printf " \"rejected\": %s, \"makespan_s\": %s, \"throughput_campaigns_per_h\": %s,",
        v["rejected"], v["makespan_s"], v["throughput_cph"]
      printf " \"p99_service_s\": %s, \"p99_over_solo\": %s },\n",
        v["p99_service_s"], v["p99_over_solo"]
    }
  ' "$tmp/sched.txt" >"$tmp/sched_sweep.txt"
  sed -i '$ s/ },$/ }/' "$tmp/sched_sweep.txt"

  local fair4
  fair4=$(awk '$1 == "SCHED" { for (i=2;i<=NF;i++) { split($i,kv,"="); v[kv[1]]=kv[2] }
    if (v["tenants"] == 4 && v["policy"] == "fair") { print v["p99_over_solo"]; exit } }' "$tmp/sched.txt")

  {
    cat <<HEADER
{
  "benchmark": "PR6: multi-tenant campaign scheduler — fairness/SLA sweep",
  "model": "DES capacity planner, paper-scale autotuned S-EnKF campaigns, 4 cycles, 2 jobs/tenant",
  "sla": "2x solo DES prediction per campaign",
  "fair_4_tenant_p99_over_solo": $fair4,
  "sweep": [
HEADER
    cat "$tmp/sched_sweep.txt"
    cat <<'FOOTER'
  ]
}
FOOTER
  } >"$out"

  echo "wrote $out"
}

bench_roofline() {
  local out=BENCH_PR7.json

  echo "==> roofline (kernel-layer GEMM/eigensolve/conversion roofline)"
  cargo run -q --release -p enkf-bench --bin roofline | tee "$tmp/roof.txt"

  # roofline prints one machine-readable line per measurement:
  #   ROOF kind=gemm flavour=nn n=128 legacy_us=... kernel_us=... \
  #        legacy_gflops=... kernel_gflops=... speedup=...
  #   ROOF kind=matvec|convert|eigen|letkf|isa ...
  awk '
    $1 == "ROOF" {
      delete v
      for (i = 2; i <= NF; i++) { split($i, kv, "="); v[kv[1]] = kv[2] }
      if (v["kind"] == "gemm")
        printf "    { \"flavour\": \"%s\", \"n\": %s, \"legacy_gflops\": %s, \"kernel_gflops\": %s, \"speedup\": %s },\n",
          v["flavour"], v["n"], v["legacy_gflops"], v["kernel_gflops"], v["speedup"]
    }
  ' "$tmp/roof.txt" >"$tmp/roof_gemm.txt"
  sed -i '$ s/ },$/ }/' "$tmp/roof_gemm.txt"

  awk '
    $1 == "ROOF" {
      delete v
      for (i = 2; i <= NF; i++) { split($i, kv, "="); v[kv[1]] = kv[2] }
      if (v["kind"] == "eigen")
        printf "    { \"n\": %s, \"serial_us\": %s, \"parallel_us\": %s },\n",
          v["n"], v["serial_us"], v["parallel_us"]
    }
  ' "$tmp/roof.txt" >"$tmp/roof_eigen.txt"
  sed -i '$ s/ },$/ }/' "$tmp/roof_eigen.txt"

  roof_kv() { # roof_kv <kind> <key> [extra filter key=value]
    local f="${3:-}"
    awk -v kind="$1" -v key="$2" -v f="$f" '
      $1 == "ROOF" {
        delete v
        for (i = 2; i <= NF; i++) { split($i, kv, "="); v[kv[1]] = kv[2] }
        if (v["kind"] != kind) next
        if (f != "") { split(f, fkv, "="); if (v[fkv[1]] != fkv[2]) next }
        print v[key]; exit
      }' "$tmp/roof.txt"
  }

  local isa fma threads letkf2 letkf4 mv_speed cv_gbps
  isa=$(roof_kv isa name)
  fma=$(roof_kv isa fma)
  threads=$(roof_kv isa threads)
  letkf2=$(roof_kv letkf time_us case=mesh32x32_stride2)
  letkf4=$(roof_kv letkf time_us case=mesh32x32_stride4)
  mv_speed=$(roof_kv matvec speedup)
  cv_gbps=$(roof_kv convert kernel_gbps)

  {
    cat <<HEADER
{
  "benchmark": "PR7: kernel layer — cache-oblivious GEMM, SIMD microkernels, parallel-ordering eigensolve",
  "isa": "$isa",
  "fma_active": $fma,
  "threads": $threads,
  "letkf_pointwise_us": { "mesh32x32_stride2": $letkf2, "mesh32x32_stride4": $letkf4 },
  "letkf_pointwise_baseline_us": { "mesh32x32_stride2": 10368.689, "source": "BENCH_PR2.json (after)" },
  "matvec_speedup": $mv_speed,
  "convert_kernel_gbps": $cv_gbps,
  "gemm_roofline": [
HEADER
    cat "$tmp/roof_gemm.txt"
    cat <<'MID'
  ],
  "eigensolve_us": [
MID
    cat "$tmp/roof_eigen.txt"
    cat <<'FOOTER'
  ]
}
FOOTER
  } >"$out"

  echo "wrote $out"
}

bench_batched_assimilation() {
  local out=BENCH_PR8.json

  echo "==> batched_assimilation (D-EnKF batched vs P-EnKF sequential sweep)"
  cargo run -q --release -p enkf-bench --bin batched_assimilation | tee "$tmp/batch.txt"

  # batched_assimilation prints one machine-readable line per sweep point:
  #   BATCH stride=3 obs=720000 shards=40 batched_s=... sequential_s=... \
  #         batched_over_sequential=... batched_overlap=...
  awk '
    $1 == "BATCH" {
      for (i = 2; i <= NF; i++) { split($i, kv, "="); v[kv[1]] = kv[2] }
      printf "    { \"obs_stride\": %s, \"observations\": %s, \"shards\": %s,",
        v["stride"], v["obs"], v["shards"]
      printf " \"batched_s\": %s, \"sequential_s\": %s, \"batched_over_sequential\": %s, \"batched_overlap_fraction\": %s },\n",
        v["batched_s"], v["sequential_s"], v["batched_over_sequential"], v["batched_overlap"]
    }
  ' "$tmp/batch.txt" >"$tmp/batch_sweep.txt"
  sed -i '$ s/ },$/ }/' "$tmp/batch_sweep.txt"

  local sparse_ratio
  sparse_ratio=$(awk '$1 == "BATCH" { for (i=2;i<=NF;i++) { split($i,kv,"="); v[kv[1]]=kv[2] } print v["batched_over_sequential"]; exit }' "$tmp/batch.txt")

  {
    cat <<HEADER
{
  "benchmark": "PR8: distributed-array D-EnKF — batched vs sequential assimilation sweep",
  "model": "DES, paper-scale workload on the Tianhe-2-like substrate, equal rank counts per point",
  "batched_arm": "D-EnKF: full-width bar reads, all-to-all observation-block exchange, one covariance-form transform",
  "sequential_arm": "P-EnKF: block reads + point-local analysis (observation-independent by construction)",
  "sparsest_point_batched_over_sequential": $sparse_ratio,
  "sweep": [
HEADER
    cat "$tmp/batch_sweep.txt"
    cat <<'FOOTER'
  ]
}
FOOTER
  } >"$out"

  echo "wrote $out"
}

bench_adaptive_degradation() {
  local out=BENCH_PR10.json

  echo "==> adaptive_degradation (static vs health-monitored campaign under OST storms)"
  cargo run -q --release -p enkf-bench --bin adaptive_degradation | tee "$tmp/adapt.txt"

  # adaptive_degradation prints one machine-readable line per severity:
  #   ADAPT severity=2 cycles=6 static_s=... adaptive_s=... speedup=... \
  #         first_cycle_s=... steady_cycle_s=... blacklisted=2
  awk '
    $1 == "ADAPT" {
      for (i = 2; i <= NF; i++) { split($i, kv, "="); v[kv[1]] = kv[2] }
      printf "    { \"severity\": %s, \"static_s\": %s, \"adaptive_s\": %s, \"speedup\": %s,",
        v["severity"], v["static_s"], v["adaptive_s"], v["speedup"]
      printf " \"adaptive_first_cycle_s\": %s, \"adaptive_steady_cycle_s\": %s, \"blacklisted_osts\": %s },\n",
        v["first_cycle_s"], v["steady_cycle_s"], v["blacklisted"]
    }
  ' "$tmp/adapt.txt" >"$tmp/adapt_sweep.txt"
  sed -i '$ s/ },$/ }/' "$tmp/adapt_sweep.txt"

  local cycles s3
  cycles=$(awk '$1 == "ADAPT" { for (i=2;i<=NF;i++) { split($i,kv,"="); v[kv[1]]=kv[2] } print v["cycles"]; exit }' "$tmp/adapt.txt")
  s3=$(awk '$1 == "ADAPT" { for (i=2;i<=NF;i++) { split($i,kv,"="); v[kv[1]]=kv[2] }
    if (v["severity"] == 3) { print v["speedup"]; exit } }' "$tmp/adapt.txt")

  {
    cat <<HEADER
{
  "benchmark": "PR10: online health monitoring — static vs adaptive degradation under OST storms",
  "model": "DES, paper-scale autotuned S-EnKF, $cycles-cycle campaign, 2 of 6 OSTs slowed by 1+severity",
  "static_arm": "seeded retries + degraded mode, no monitor: every cycle pays the slowed OSTs in full",
  "adaptive_arm": "health monitor carried across cycles: detectors blacklist the hot OSTs at the cycle-0 fold, later cycles reorder and speculate onto healthy replicas",
  "invariants": "severity 0 arms bit-identical (clean monitor is free); severity >= 2 adaptive strictly faster (asserted in-bin)",
  "severity_3_speedup": $s3,
  "sweep": [
HEADER
    cat "$tmp/adapt_sweep.txt"
    cat <<'FOOTER'
  ]
}
FOOTER
  } >"$out"

  echo "wrote $out"
}

ran=0
if want campaign_mttr; then bench_campaign_mttr; ran=1; fi
if want pipelined_campaign; then bench_pipelined_campaign; ran=1; fi
if want scheduler_fairness; then bench_scheduler_fairness; ran=1; fi
if want roofline; then bench_roofline; ran=1; fi
if want batched_assimilation; then bench_batched_assimilation; ran=1; fi
if want adaptive_degradation; then bench_adaptive_degradation; ran=1; fi

if [[ "$ran" -eq 0 ]]; then
  echo "unknown benchmark '$only' (see --only list in the header)" >&2
  exit 2
fi
