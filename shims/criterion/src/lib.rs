//! Offline stand-in for `criterion`. No statistics engine: each benchmark is
//! warmed up once and then timed over a small fixed number of iterations,
//! printing mean wall time per iteration. API-compatible with the
//! `criterion_group!`/`criterion_main!`/`benchmark_group` subset this
//! workspace's benches use.

use std::time::{Duration, Instant};

const ITERS: u32 = 20;

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup {}
    }

    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        run_bench(id.as_ref(), f);
        self
    }
}

pub struct BenchmarkGroup {}

impl BenchmarkGroup {
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        run_bench(id.as_ref(), f);
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    let per_iter = if bencher.iters == 0 {
        Duration::ZERO
    } else {
        bencher.elapsed / bencher.iters
    };
    println!("  {id}: {per_iter:?}/iter over {} iters", bencher.iters);
}

pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up iteration outside the timed window.
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += ITERS;
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        for _ in 0..ITERS {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
