//! Offline stand-in for `parking_lot`: a poison-free `Mutex` facade over
//! `std::sync::Mutex` (panics while holding the lock simply clear the poison
//! flag, matching parking_lot's no-poisoning semantics).

use std::sync::MutexGuard;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_is_poison_free() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
