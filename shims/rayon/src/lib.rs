//! Offline stand-in for `rayon`, providing *real* shared-memory parallelism
//! via `std::thread::scope` for the call shapes this workspace uses:
//!
//! - `slice.par_iter().map(f).collect::<C>()`
//! - `slice.par_chunks_mut(n).enumerate().for_each(f)`
//!
//! Work is split into one contiguous chunk per worker thread (bounded by
//! `std::thread::available_parallelism`), preserving input order on collect.

use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// Hardware thread count, detected once. `available_parallelism` reads
/// cgroup limits on Linux (which allocates); hot allocation-free paths call
/// [`current_num_threads`] per operation, so the probe must be cached.
fn hw_threads() -> usize {
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

fn workers(len: usize) -> usize {
    hw_threads().min(len).max(1)
}

pub mod prelude {
    pub use crate::{ParallelIterator, ParallelSliceExt};
}

/// Run two closures, potentially in parallel, and return both results —
/// rayon's fork/join primitive, here backed by one scoped thread for the
/// second closure while the first runs on the caller's thread.
///
/// Unlike rayon there is no work-stealing pool, so each `join` pays a real
/// thread spawn; callers (the cache-oblivious GEMM recursion) are expected
/// to gate `join` on a work threshold and fall back to sequential calls for
/// small subproblems.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon-shim join worker panicked"))
    })
}

/// Number of worker threads a parallel construct may use (the shim's
/// equivalent of `current_num_threads`). Allocation-free after the first
/// call.
pub fn current_num_threads() -> usize {
    hw_threads()
}

/// Entry points on slices, mirroring rayon's `par_iter`/`par_chunks_mut`.
pub trait ParallelSliceExt<T> {
    fn par_iter(&self) -> ParIter<'_, T>;
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Sync + Send> ParallelSliceExt<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParChunksMut {
            items: self,
            chunk_size,
        }
    }
}

impl<T: Sync + Send> ParallelSliceExt<T> for Vec<T> {
    fn par_iter(&self) -> ParIter<'_, T> {
        self.as_slice().par_iter()
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        self.as_mut_slice().par_chunks_mut(chunk_size)
    }
}

/// Minimal parallel-iterator facade: `map` then `collect`/`for_each`.
pub trait ParallelIterator: Sized {
    type Item;

    fn map<U, F>(self, f: F) -> ParMap<Self, F>
    where
        F: Fn(Self::Item) -> U + Sync,
        U: Send,
    {
        ParMap { inner: self, f }
    }
}

pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;
}

pub struct ParMap<I, F> {
    inner: I,
    f: F,
}

impl<'a, T, U, F> ParMap<ParIter<'a, T>, F>
where
    T: Sync,
    U: Send,
    F: Fn(&'a T) -> U + Sync,
{
    pub fn collect<C: FromIterator<U>>(self) -> C {
        let items = self.inner.items;
        let f = &self.f;
        let n = items.len();
        if n == 0 {
            return std::iter::empty().collect();
        }
        let nw = workers(n);
        if nw == 1 {
            return items.iter().map(f).collect();
        }
        let per = n.div_ceil(nw);
        let mut parts: Vec<Vec<U>> = std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(per)
                .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<U>>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon-shim worker panicked"))
                .collect()
        });
        parts.drain(..).flatten().collect()
    }
}

pub struct ParChunksMut<'a, T> {
    items: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate { inner: self }
    }
}

pub struct ParChunksMutEnumerate<'a, T> {
    inner: ParChunksMut<'a, T>,
}

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a mut [T])) + Sync,
    {
        let chunk_size = self.inner.chunk_size;
        let chunks: Vec<(usize, &'a mut [T])> = self
            .inner
            .items
            .chunks_mut(chunk_size)
            .enumerate()
            .collect();
        let n = chunks.len();
        if n == 0 {
            return;
        }
        let nw = workers(n);
        let f = &f;
        if nw == 1 {
            for item in chunks {
                f(item);
            }
            return;
        }
        let per = n.div_ceil(nw);
        let mut groups: Vec<Vec<(usize, &'a mut [T])>> = Vec::with_capacity(nw);
        let mut it = chunks.into_iter();
        loop {
            let group: Vec<_> = it.by_ref().take(per).collect();
            if group.is_empty() {
                break;
            }
            groups.push(group);
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .into_iter()
                .map(|group| {
                    scope.spawn(move || {
                        for item in group {
                            f(item);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("rayon-shim worker panicked");
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_mut_enumerate_touches_every_chunk() {
        let mut v = vec![0usize; 100];
        v.par_chunks_mut(7).enumerate().for_each(|(i, chunk)| {
            for x in chunk {
                *x = i + 1;
            }
        });
        assert!(v.iter().all(|&x| x > 0));
        assert_eq!(v[0], 1);
        assert_eq!(v[99], 100usize.div_ceil(7));
    }

    #[test]
    fn collect_into_result_vec() {
        let v: Vec<i32> = (0..64).collect();
        let out: Result<Vec<i32>, String> = v.par_iter().map(|&x| Ok(x)).collect();
        assert_eq!(out.unwrap().len(), 64);
    }
}
