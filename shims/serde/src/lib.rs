//! Offline stand-in for `serde`. The workspace derives
//! `Serialize`/`Deserialize` on a handful of config types but never actually
//! serializes them, so marker traits plus no-op derive macros suffice.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}
