//! Offline stand-in for `crossbeam`, covering the `channel::{unbounded,
//! Sender, Receiver}` surface used by `enkf-net`, backed by
//! `std::sync::mpsc`. Single-consumer is sufficient here: each receiver is
//! owned by exactly one rank (or moved wholesale to its helper thread).

pub mod channel {
    use std::sync::mpsc;

    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "receive timed out"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.inner.try_recv()
        }

        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(41u64).unwrap());
        tx.send(1).unwrap();
        let sum = rx.recv().unwrap() + rx.recv().unwrap();
        assert_eq!(sum, 42);
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        use super::channel::RecvTimeoutError;
        use std::time::Duration;
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
