//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build container has no registry access, so the workspace vendors the
//! slice of `rand` it actually uses: the `Rng`/`RngCore`/`SeedableRng` trait
//! structure, `rngs::StdRng` (xoshiro256++ seeded via splitmix64 — *not* the
//! upstream ChaCha12, but a high-quality deterministic generator), uniform
//! `gen::<f64>()`, and `gen_range` over integer and float ranges.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic seeding; only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can produce a uniform sample.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Lemire-style scaling of a 64-bit draw onto `[0, width)`.
#[inline]
fn scale_u64<R: RngCore + ?Sized>(rng: &mut R, width: u64) -> u64 {
    debug_assert!(width > 0);
    ((rng.next_u64() as u128 * width as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let width = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(scale_u64(rng, width) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let width = (hi.wrapping_sub(lo) as u64).wrapping_add(1);
                if width == 0 {
                    // Full-width range: every value is fair game.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(scale_u64(rng, width) as $t)
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u8, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

pub mod distributions {
    use super::{unit_f64, RngCore};

    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution: uniform `[0, 1)` for floats.
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng)
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ with splitmix64 state expansion. Deterministic, fast,
    /// and statistically strong enough for the moment tests in this repo.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_distinct_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xa: Vec<f64> = (0..8).map(|_| a.gen::<f64>()).collect();
        let xb: Vec<f64> = (0..8).map(|_| b.gen::<f64>()).collect();
        let xc: Vec<f64> = (0..8).map(|_| c.gen::<f64>()).collect();
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn unit_uniform_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
            sq += u * u;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!((mean - 0.5).abs() < 5e-3, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 5e-3, "var {var}");
    }

    #[test]
    fn gen_range_covers_inclusive_ends() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let k: usize = rng.gen_range(1..=3);
            seen[k - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
