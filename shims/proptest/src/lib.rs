//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(..)]` header, `Strategy` with
//! `prop_map`/`prop_flat_map`, range and tuple strategies, `any::<T>()`,
//! `Just`, `collection::vec`, `sample::select`, and the `prop_assert*`
//! macros. Cases are generated deterministically from a hash of the test
//! name; failures report the case index. There is no shrinking.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Per-test deterministic RNG handed to strategies.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test path keeps seeds stable across runs.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            rng: StdRng::seed_from_u64(h),
        }
    }

    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values. Unlike upstream there is no value tree / shrinking:
/// `generate` draws a fresh value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, runner: &mut TestRunner) -> Self::Value {
        (**self).generate(runner)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, runner: &mut TestRunner) -> U {
        (self.f)(self.inner.generate(runner))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, runner: &mut TestRunner) -> Self::Value {
        (self.f)(self.inner.generate(runner)).generate(runner)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

macro_rules! arbitrary_from_u64 {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> Self {
                runner.rng().gen::<u64>() as $t
            }
        }
    )*};
}

arbitrary_from_u64!(u64, u32, usize, i64, i32);

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.rng().gen::<u64>() & 1 == 1
    }
}

pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(usize, u64, u32, u8, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, runner: &mut TestRunner) -> f64 {
        runner.rng().gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(runner),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

pub mod collection {
    use super::{Strategy, TestRunner};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Accepted length specifiers for `vec`.
    pub trait SizeRange {
        fn pick(&self, runner: &mut TestRunner) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _: &mut TestRunner) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, runner: &mut TestRunner) -> usize {
            runner.rng().gen_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, runner: &mut TestRunner) -> usize {
            runner.rng().gen_range(self.clone())
        }
    }

    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            let n = self.len.pick(runner);
            (0..n).map(|_| self.element.generate(runner)).collect()
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRunner};
    use rand::Rng;

    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Uniformly picks one of the given options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, runner: &mut TestRunner) -> T {
            let i = runner.rng().gen_range(0..self.options.len());
            self.options[i].clone()
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Just,
        ProptestConfig, Strategy, TestRunner,
    };
}

/// Skips the current case (counts as success) when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                format!($($fmt)*)
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{:?} != {:?}: {}", l, r, format!($($fmt)*));
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "{:?} == {:?}", l, r);
    }};
}

/// The test-harness macro. Supports an optional leading
/// `#![proptest_config(expr)]` followed by `#[test] fn name(pat in strategy,
/// ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (config = ($cfg:expr); ) => {};
    (
        config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __runner = $crate::TestRunner::from_name(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..__config.cases {
                let __result: ::std::result::Result<(), ::std::string::String> = (|| {
                    use $crate::Strategy as _;
                    $(let $pat = ($strat).generate(&mut __runner);)+
                    $body
                    Ok(())
                })();
                if let Err(msg) = __result {
                    panic!(
                        "proptest {} failed on case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        msg
                    );
                }
            }
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}
