//! No-op `Serialize`/`Deserialize` derives. The workspace only *annotates*
//! config types with serde derives (nothing is ever serialized), so the
//! derive can expand to nothing and the trait bounds stay unused.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
