//! Offline stand-in for `bytes`, covering the `BytesMut`/`BufMut`/`Buf`
//! subset used by the PFS file codec (little-endian f64 put/get).

use std::ops::{Deref, DerefMut};

/// Growable byte buffer backed by `Vec<u8>`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side trait: append primitive values.
pub trait BufMut {
    fn put_f64_le(&mut self, v: f64);
    fn put_u64_le(&mut self, v: u64);
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_f64_le(&mut self, v: f64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// Read-side trait: consume primitive values from the front.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn get_f64_le(&mut self) -> f64;
    fn get_u64_le(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    fn get_u64_le(&mut self) -> u64 {
        assert!(self.len() >= 8, "buffer underflow");
        let (head, rest) = self.split_at(8);
        let mut b = [0u8; 8];
        b.copy_from_slice(head);
        *self = rest;
        u64::from_le_bytes(b)
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut, BytesMut};

    #[test]
    fn f64_roundtrip_advances_cursor() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_f64_le(1.5);
        buf.put_f64_le(-2.25);
        assert_eq!(buf.len(), 16);
        let mut slice: &[u8] = &buf;
        assert_eq!(slice.remaining(), 16);
        assert_eq!(slice.get_f64_le(), 1.5);
        assert_eq!(slice.get_f64_le(), -2.25);
        assert_eq!(slice.remaining(), 0);
    }
}
