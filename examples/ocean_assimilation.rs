//! A full parallel assimilation round-trip on real files, comparing all
//! three parallel EnKF variants.
//!
//! The scenario's background ensemble is written to disk as one file per
//! member (the paper's layout: row-priority latitude lines, `h` bytes per
//! point). Then L-EnKF (single reader), P-EnKF (block reading) and S-EnKF
//! (bar reading + concurrent groups + multi-stage overlap with a helper
//! thread) each run as real rank threads, and their analyses are verified
//! to be identical to the serial reference.
//!
//! ```text
//! cargo run --release --example ocean_assimilation
//! ```

use s_enkf::parallel::AssimilationSetup;
use s_enkf::prelude::*;

fn main() {
    let mesh = Mesh::new(48, 24);
    let members = 12;
    let scenario = ScenarioBuilder::new(mesh)
        .members(members)
        .observation_stride(2)
        .seed(7)
        .build();

    // Lay the background ensemble out on "the parallel file system":
    // 3 vertical levels -> h = 24 bytes per grid point.
    let scratch = ScratchDir::new("ocean-assimilation").expect("scratch dir");
    let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 24)).expect("store");
    write_ensemble(&store, &scenario.ensemble).expect("write members");
    println!(
        "wrote {} member files ({} bytes each) under {}",
        members,
        store.layout().file_size(),
        scratch.path().display()
    );

    let radius = LocalizationRadius { xi: 2, eta: 2 };
    let setup = AssimilationSetup {
        store: &store,
        members,
        observations: &scenario.observations,
        analysis: LocalAnalysis::new(radius),
    };

    let reference =
        serial_enkf(&scenario.ensemble, &scenario.observations, radius).expect("serial");

    // L-EnKF: rank 0 reads everything and scatters.
    let (l_analysis, l_report) = LEnkf { nsdx: 4, nsdy: 3 }.run(&setup).expect("L-EnKF");
    // P-EnKF: every rank block-reads its own expansion.
    let (p_analysis, p_report) = PEnkf { nsdx: 4, nsdy: 3 }.run(&setup).expect("P-EnKF");
    // S-EnKF: 12 compute ranks + 2 groups x 3 bar readers, 2 layers.
    let senkf = SEnkf::new(Params {
        nsdx: 4,
        nsdy: 3,
        layers: 2,
        ncg: 2,
    });
    let (s_analysis, s_report) = senkf.run(&setup).expect("S-EnKF");

    for (name, analysis) in [
        ("L-EnKF", &l_analysis),
        ("P-EnKF", &p_analysis),
        ("S-EnKF", &s_analysis),
    ] {
        assert!(
            analysis.states().approx_eq(reference.states(), 1e-12),
            "{name} diverged from the serial reference"
        );
        println!(
            "{name}: RMSE {:.4} -> {:.4}  (identical to serial reference)",
            scenario.rmse_background(),
            scenario.rmse_of(analysis)
        );
    }

    println!(
        "\nwall times: L-EnKF {:.3}s | P-EnKF {:.3}s | S-EnKF {:.3}s",
        l_report.wall_time, p_report.wall_time, s_report.wall_time
    );
    println!(
        "S-EnKF phases: io ranks read {:.3}s, comm {:.3}s; compute ranks analyse {:.3}s, wait {:.3}s",
        s_report.io_mean().read,
        s_report.io_mean().comm,
        s_report.compute_mean().compute,
        s_report.compute_mean().wait,
    );
    println!(
        "I/O accounting: {} seeks, {} bytes read",
        store.stats().seeks,
        store.stats().bytes_read
    );

    // Write the analysis back to the file system with parallel bar writers
    // (the write-side mirror of the bar-reading co-design), then verify the
    // roundtrip.
    let out_dir = scratch.path().join("analysis");
    let out_store = FileStore::open(&out_dir, store.layout()).expect("output store");
    s_enkf::parallel::parallel_write_back(&out_store, &s_analysis, 3).expect("write-back");
    let reread = read_ensemble(&out_store, members).expect("re-read analysis");
    assert_eq!(
        reread.states(),
        s_analysis.states(),
        "write-back roundtrip must be exact"
    );
    println!(
        "analysis written back to {} and verified",
        out_dir.display()
    );
}
