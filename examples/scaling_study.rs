//! A miniature strong-scaling study on the real (threaded) executor:
//! P-EnKF vs S-EnKF on actual files with growing rank counts, verifying the
//! analyses agree at every configuration.
//!
//! This is the laptop-scale version of Figure 13; the paper-scale version
//! runs on the discrete-event model (`cargo run -p enkf-bench --bin
//! fig13_strong_scaling`).
//!
//! ```text
//! cargo run --release --example scaling_study [-- --trace]
//! ```
//!
//! With `--trace`, each configuration's wall-clock execution trace is
//! exported as Chrome-trace JSON under `target/traces/` (open in
//! `chrome://tracing` or Perfetto).

use s_enkf::parallel::AssimilationSetup;
use s_enkf::prelude::*;

fn main() {
    let trace_on = std::env::args().any(|a| a == "--trace");
    let mesh = Mesh::new(64, 32);
    let members = 8;
    let scenario = ScenarioBuilder::new(mesh)
        .members(members)
        .observation_stride(2)
        .seed(11)
        .build();

    let scratch = ScratchDir::new("scaling-study").expect("scratch");
    let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 8)).expect("store");
    write_ensemble(&store, &scenario.ensemble).expect("write");

    let radius = LocalizationRadius { xi: 2, eta: 2 };
    let setup = AssimilationSetup {
        store: &store,
        members,
        observations: &scenario.observations,
        analysis: LocalAnalysis::new(radius),
    };

    let reference =
        serial_enkf(&scenario.ensemble, &scenario.observations, radius).expect("serial");

    println!(
        "{:>18}  {:>9}  {:>9}  {:>8}",
        "configuration", "P-EnKF s", "S-EnKF s", "match"
    );
    let mut last: Option<(f64, f64)> = None;
    for (nsdx, nsdy, layers, ncg) in [(2, 2, 2, 2), (4, 2, 2, 2), (4, 4, 2, 4), (8, 4, 4, 4)] {
        let (p_analysis, p_rep, mut p_trace) =
            PEnkf { nsdx, nsdy }.run_traced(&setup).expect("P-EnKF");
        let senkf = SEnkf::new(Params {
            nsdx,
            nsdy,
            layers,
            ncg,
        });
        let (s_analysis, s_rep, mut s_trace) = senkf.run_traced(&setup).expect("S-EnKF");
        if trace_on {
            let dir = std::path::Path::new("target/traces");
            std::fs::create_dir_all(dir).expect("create traces dir");
            p_trace.set_label(format!("scaling-penkf-{nsdx}x{nsdy}"));
            s_trace.set_label(format!("scaling-senkf-{nsdx}x{nsdy}-L{layers}"));
            for t in [&p_trace, &s_trace] {
                let path = t.write_chrome_json(dir).expect("write trace");
                println!("[trace {}]", path.display());
            }
        }
        let ok = p_analysis.states().approx_eq(reference.states(), 1e-12)
            && s_analysis.states().approx_eq(reference.states(), 1e-12);
        println!(
            "{:>14}x{} L{}  {:>9.3}  {:>9.3}  {:>8}",
            nsdx,
            nsdy,
            layers,
            p_rep.wall_time,
            s_rep.wall_time,
            if ok { "exact" } else { "DIVERGED" }
        );
        assert!(ok, "parallel analyses must equal the serial reference");
        last = Some((p_rep.wall_time, s_rep.wall_time));
    }
    let (p, s) = last.expect("ran at least one configuration");
    println!(
        "\nnote: at laptop scale thread overheads dominate (P {p:.3}s vs S {s:.3}s); the\n\
         paper-scale contention effects live in the discrete-event model (see\n\
         enkf-bench's fig* binaries)."
    );
}
