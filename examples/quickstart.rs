//! Quickstart: build a synthetic twin experiment, assimilate it serially,
//! and confirm the analysis moved toward the truth.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use s_enkf::prelude::*;

fn main() {
    // A small ocean-like mesh: 48 longitudes x 24 latitudes.
    let mesh = Mesh::new(48, 24);

    // A twin experiment: known truth, biased background ensemble with
    // spatially correlated errors, noisy observations of the truth on a
    // regular network.
    let scenario = ScenarioBuilder::new(mesh)
        .members(24)
        .observation_stride(3)
        .obs_noise_std(0.15)
        .seed(42)
        .build();

    println!(
        "scenario: {} model components, {} members, {} observations",
        mesh.n(),
        scenario.ensemble.size(),
        scenario.observations.len()
    );
    println!(
        "background RMSE vs truth: {:.4}",
        scenario.rmse_background()
    );

    // Domain localization: each point is updated from its (2ξ+1)x(2η+1)
    // local box (Fig. 2 of the paper).
    let radius = LocalizationRadius { xi: 2, eta: 2 };
    let analysis =
        serial_enkf(&scenario.ensemble, &scenario.observations, radius).expect("analysis");

    let before = scenario.rmse_background();
    let after = scenario.rmse_of(&analysis);
    println!("analysis   RMSE vs truth: {after:.4}");
    println!("improvement: {:.1}%", (1.0 - after / before) * 100.0);
    assert!(after < before, "assimilation must reduce the error");
}
