//! Cycled data assimilation: the reason EnKF exists.
//!
//! A truth field evolves under advection–diffusion dynamics; every cycle
//! the ensemble forecasts forward, noisy observations of the truth arrive,
//! and the EnKF analysis becomes the next forecast's initial condition —
//! "providing initial conditions of numerical atmospheric and oceanic
//! models", as the paper's opening sentence puts it. A free-running
//! (never-assimilating) ensemble drifts away; the assimilating one stays
//! locked to the truth.
//!
//! Both analysis kernels are exercised: the stochastic (perturbed-
//! observation, modified-Cholesky) EnKF used throughout the paper, and the
//! deterministic ensemble-space LETKF.
//!
//! ```text
//! cargo run --release --example cycled_assimilation
//! ```

use s_enkf::core::{inflated, serial_enkf, serial_letkf};
use s_enkf::data::{CycleConfig, CycledExperiment};
use s_enkf::prelude::*;

fn run(label: &str, use_letkf: bool) {
    let mesh = Mesh::new(36, 18);
    let members = 20;
    let radius = LocalizationRadius { xi: 2, eta: 2 };
    let mut exp = CycledExperiment::new(mesh, members, CycleConfig::default(), 17);

    println!("\n== {label} ==");
    println!(
        "{:>5}  {:>12}  {:>12}  {:>12}",
        "cycle", "forecast", "analysis", "free run"
    );
    for _ in 0..8 {
        let stats = exp
            .run_cycle(|background, observations| {
                // Mild multiplicative inflation keeps the cycled ensemble
                // from collapsing.
                let inflated_bg = inflated(background, 1.1);
                if use_letkf {
                    serial_letkf(&inflated_bg, observations, radius)
                } else {
                    serial_enkf(&inflated_bg, observations, radius)
                }
            })
            .expect("analysis");
        println!(
            "{:>5}  {:>12.4}  {:>12.4}  {:>12.4}",
            stats.cycle, stats.forecast_rmse, stats.analysis_rmse, stats.free_run_rmse
        );
        assert!(
            stats.analysis_rmse.is_finite() && stats.analysis_rmse > 0.0,
            "sane analysis error"
        );
    }
}

fn main() {
    run(
        "stochastic EnKF (perturbed observations, modified Cholesky)",
        false,
    );
    run("deterministic LETKF (ensemble-space square root)", true);
    println!(
        "\nThe assimilating runs hold their error near the observation level while\n\
         the free-running ensemble keeps the initial-condition error."
    );
}
