//! Auto-tuning walkthrough: use the cost models (Eqs. 7–10) and
//! Algorithms 1–2 to pick `(n_sdx, n_sdy, L, n_cg)` for a processor budget,
//! then validate the choice against the discrete-event cluster model.
//!
//! ```text
//! cargo run --release --example autotune_cluster
//! ```

use s_enkf::parallel::model::senkf::model_senkf;
use s_enkf::parallel::ModelConfig;
use s_enkf::tuning::{algorithm1, autotune, economic_choice, min_t1_curve};

fn main() {
    let cfg = ModelConfig::paper();
    let cost = cfg.cost_params();

    // Step 1: fix the compute cost C2 and look at Algorithm 1 at one C1.
    let (c1, c2) = (120, 2000);
    let one = algorithm1(&cost, c1, c2).expect("feasible");
    println!(
        "Algorithm 1 @ (C1={c1}, C2={c2}): {:?}\n  model T1 = {:.3}s, T_total = {:.3}s",
        one.params, one.t1, one.t_total
    );

    // Step 2: the min-T1 curve over C1 and the economic choice (Eq. 14).
    let curve = min_t1_curve(&cost, c2, [5usize, 10, 15, 20, 30, 40, 60, 120, 200, 600]);
    println!("\nmin T1 vs C1 (C2 = {c2}):");
    for pt in &curve {
        println!("  C1 = {:>4}: T1 = {:.3}s  {:?}", pt.c1, pt.t1, pt.params);
    }
    let pick = economic_choice(&curve, 5e-2).expect("non-empty curve");
    println!(
        "economic choice (eps = 0.05): C1 = {} -> {:?}",
        pick.c1, pick.params
    );

    // Step 3: the full auto-tuner over a 12,000-processor budget.
    let np = 12_000;
    let tuned = autotune(&cost, np, 2e-2).expect("tunable");
    println!(
        "\nAlgorithm 2 @ n_p = {np}: {:?}\n  uses {} + {} = {} processors, model T_total = {:.3}s",
        tuned.params,
        tuned.params.c1(),
        tuned.params.c2(),
        tuned.params.total_processors(),
        tuned.t_total
    );

    // Step 4: cross-check on the discrete-event cluster model.
    let outcome = model_senkf(&cfg, tuned.params).expect("DES run");
    println!(
        "DES check: makespan {:.3}s, exposed first stage {:.3}s, overlapped {:.1}%",
        outcome.makespan,
        outcome.first_compute_start,
        outcome.overlapped_fraction() * 100.0
    );
}
