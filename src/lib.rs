//! # S-EnKF — a scalable ensemble Kalman filter, co-designed
//!
//! This crate is the facade of a from-scratch Rust reproduction of
//! *“S-EnKF: Co-designing for Scalable Ensemble Kalman Filter”*
//! (Xiao, Wang, Wan, Hong & Tan, PPoPP 2019). It re-exports the public API
//! of every workspace crate so downstream users depend on one package:
//!
//! * [`linalg`] — dense matrices, Cholesky/LDLᵀ, the modified-Cholesky
//!   inverse-covariance estimator, Gaussian sampling.
//! * [`grid`] — lat–lon meshes, domain decomposition, localization boxes,
//!   layers, bars, and file-layout regions.
//! * [`sim`] — the discrete-event engine that models the 12,000-core runs.
//! * [`trace`] — execution spans and operation digests shared by the real
//!   and modeled executors (Chrome-trace export, conformance checking).
//! * [`fault`] — deterministic fault injection: seeded fault plans, retry
//!   policies, degraded (N−1) execution, and the shared fault-event log.
//! * [`health`] — online health monitoring and adaptive degradation:
//!   deterministic failure detectors, OST blacklisting with probation,
//!   speculative read routing, and the shared health decision log.
//! * [`pfs`] — the parallel file system substrate (OSTs, striping, seek and
//!   transfer costs; real local-disk backend plus a DES-modeled backend).
//! * [`ckpt`] — durable, self-verifying campaign checkpoints (atomic
//!   member + manifest writes, checksum-verified restore with quarantine).
//! * [`net`] — the message-passing substrate (threads + channels for real
//!   runs, a latency–bandwidth cost model for simulated runs).
//! * [`data`] — synthetic ocean-like ensembles and the on-disk file format.
//! * [`core`] — the EnKF numerics: global analysis, local analysis,
//!   perturbed observations, observation operators.
//! * [`parallel`] — L-EnKF, P-EnKF and S-EnKF planners plus the real and
//!   modeled executors.
//! * [`tuning`] — the cost models (Eqs. 7–10) and the auto-tuner
//!   (Algorithms 1 and 2).
//! * [`sched`] — the multi-tenant campaign scheduler: admission control
//!   with quotas and backpressure, weighted max-min fair-share of OST
//!   bandwidth and compute ranks, and a DES-backed capacity planner that
//!   gates SLAs before dispatch.
//!
//! ## Quick start
//!
//! ```
//! use s_enkf::prelude::*;
//!
//! // A small twin experiment: truth, ensemble, observations, assimilate.
//! let mesh = Mesh::new(24, 12);
//! let scen = ScenarioBuilder::new(mesh)
//!     .members(16)
//!     .observation_stride(3)
//!     .seed(7)
//!     .build();
//! let radius = LocalizationRadius { xi: 2, eta: 2 };
//! let analysis = serial_enkf(&scen.ensemble, &scen.observations, radius).unwrap();
//! let before = scen.rmse_background();
//! let after = scen.rmse_of(&analysis);
//! assert!(after < before, "assimilation must reduce error");
//! ```

pub use enkf_ckpt as ckpt;
pub use enkf_core as core;
pub use enkf_data as data;
pub use enkf_fault as fault;
pub use enkf_grid as grid;
pub use enkf_health as health;
pub use enkf_linalg as linalg;
pub use enkf_net as net;
pub use enkf_parallel as parallel;
pub use enkf_pfs as pfs;
pub use enkf_sched as sched;
pub use enkf_sim as sim;
pub use enkf_trace as trace;
pub use enkf_tuning as tuning;

/// Everything a typical application needs, importable in one line.
pub mod prelude {
    pub use enkf_ckpt::{CampaignCheckpoint, CheckpointStore, CkptError};
    pub use enkf_core::{
        inflate_ensemble, inflated, serial_enkf, serial_enkf_decomposed, serial_letkf,
        serial_letkf_decomposed, AnalysisGranularity, Ensemble, GlobalAnalysis, LetkfAnalysis,
        LocalAnalysis, ObservationOperator, Observations, PerturbedObservations,
    };
    pub use enkf_data::{
        read_ensemble, write_ensemble, AdvectionDiffusion, CycleConfig, CycleState,
        CycledExperiment, Scenario, ScenarioBuilder, SmoothFieldGenerator,
    };
    pub use enkf_fault::{
        FaultConfig, FaultEvent, FaultLog, FaultPlan, RetryPolicy, SubstrateError,
    };
    pub use enkf_grid::{
        Decomposition, FileLayout, LocalizationRadius, Mesh, RegionRect, SubDomainId,
    };
    pub use enkf_health::{
        HealthEvent, HealthLog, HealthMonitor, HealthParams, HealthSnapshot, ReadRoute, RouteView,
    };
    pub use enkf_linalg::Matrix;
    pub use enkf_net::NetParams;
    pub use enkf_parallel::{
        model_campaign, model_campaign_adaptive, model_denkf_adaptive, model_lenkf_adaptive,
        model_penkf_adaptive, model_penkf_faulted, model_penkf_traced, model_senkf_adaptive,
        model_senkf_faulted, model_senkf_traced, parallel_write_back, run_campaign,
        run_campaign_ctx, AssimilationSetup, CampaignConfig, CampaignCtx, CampaignError,
        CampaignExecutor, CampaignModelOutcome, CampaignModelPlan, CampaignReport, DEnkf,
        ExecutionReport, LEnkf, ModelConfig, ModelOutcome, ModelVariant, PEnkf, PhaseBreakdown,
        RecoveryEvent, SEnkf,
    };
    pub use enkf_pfs::{FileStore, PfsParams, ScratchDir};
    pub use enkf_sched::{
        simulate, ClusterCapacity, DesPlanner, JobId, JobModel, JobSpec, Quota, SchedConfig,
        Scheduler, SharePolicy, SubmitError, TenantId, TenantSpec,
    };
    pub use enkf_trace::{RankTracer, Span, Trace};
    pub use enkf_tuning::{autotune, CostParams, MachineParams, Params, TunedParams, Workload};
}
